package vm

import (
	"fmt"
	"math"
)

// Builder assembles a Program from Go code. Workload generators use it to
// emit virtual-ISA functions with forward-referenced labels and calls;
// Build resolves everything and validates the result.
type Builder struct {
	funcs    []*FuncBuilder
	segs     []Segment
	reserved []Region
	entry    string
	next     uint64 // next free global address
	errs     []error
}

// NewBuilder returns an empty Builder. The entry point defaults to "main".
func NewBuilder() *Builder {
	return &Builder{entry: "main", next: GlobalBase}
}

// SetEntry names the entry function (default "main").
func (b *Builder) SetEntry(name string) { b.entry = name }

// Data installs an initialized global data segment and returns its address.
// Segments are laid out consecutively with 64-byte alignment so distinct
// segments never share a cache line in line-granularity mode.
func (b *Builder) Data(name string, data []byte) uint64 {
	addr := b.next
	b.segs = append(b.segs, Segment{Name: name, Addr: addr, Data: data})
	b.next = align(addr+uint64(len(data)), 64)
	return addr
}

// Reserve returns the address of an uninitialized (zero) global region of the
// given size. The machine's memory is zero on first touch, so no segment
// data is installed; the region is recorded on the program so the static
// verifier knows the range is declared.
func (b *Builder) Reserve(name string, size uint64) uint64 {
	addr := b.next
	b.reserved = append(b.reserved, Region{Name: name, Addr: addr, Size: size})
	b.next = align(addr+size, 64)
	return addr
}

func align(a, to uint64) uint64 { return (a + to - 1) &^ (to - 1) }

// Func starts (or resumes) a function with the given name and returns its
// FuncBuilder. Calling Func twice with the same name returns the same
// builder, so code can be appended from multiple sites.
func (b *Builder) Func(name string) *FuncBuilder {
	for _, f := range b.funcs {
		if f.name == name {
			return f
		}
	}
	f := &FuncBuilder{b: b, name: name}
	b.funcs = append(b.funcs, f)
	return f
}

// Build resolves labels and call targets, validates, and returns the program.
func (b *Builder) Build() (*Program, error) {
	if len(b.errs) > 0 {
		return nil, b.errs[0]
	}
	p := &Program{Segments: b.segs, Reserved: b.reserved}
	index := make(map[string]int, len(b.funcs))
	for i, fb := range b.funcs {
		index[fb.name] = i
	}
	for _, fb := range b.funcs {
		if len(fb.unbound) > 0 {
			return nil, fmt.Errorf("vm: function %q has %d unbound labels", fb.name, len(fb.unbound))
		}
		code := make([]Instr, len(fb.code))
		copy(code, fb.code)
		for pc := range code {
			in := &code[pc]
			if in.Op == OpCall {
				callee := fb.calls[pc]
				ci, ok := index[callee]
				if !ok {
					return nil, fmt.Errorf("vm: %s+%d calls undefined function %q", fb.name, pc, callee)
				}
				in.Target = int32(ci)
			}
		}
		p.Funcs = append(p.Funcs, &Function{Name: fb.name, Code: code})
	}
	entry, ok := index[b.entry]
	if !ok {
		return nil, fmt.Errorf("vm: entry function %q not defined", b.entry)
	}
	p.Entry = entry
	p.buildIndex()
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := p.Verify(); err != nil {
		return nil, err
	}
	return p, nil
}

// Label is an abstract jump target within one function. Create with
// FuncBuilder.NewLabel, place with Bind, and reference from branch emitters
// before or after binding.
type Label int

// FuncBuilder accumulates instructions for one function.
type FuncBuilder struct {
	b       *Builder
	name    string
	code    []Instr
	calls   map[int]string // pc of OpCall -> callee name
	labels  []int          // label -> bound pc (-1 while unbound)
	patches map[Label][]int
	unbound map[Label]bool
}

// Name returns the function's name.
func (f *FuncBuilder) Name() string { return f.name }

// Len returns the number of instructions emitted so far.
func (f *FuncBuilder) Len() int { return len(f.code) }

// NewLabel allocates an unbound label.
func (f *FuncBuilder) NewLabel() Label {
	if f.unbound == nil {
		f.unbound = make(map[Label]bool)
		f.patches = make(map[Label][]int)
	}
	l := Label(len(f.labels))
	f.labels = append(f.labels, -1)
	f.unbound[l] = true
	return l
}

// Bind places the label at the next emitted instruction.
func (f *FuncBuilder) Bind(l Label) {
	if int(l) >= len(f.labels) {
		f.fail("bind of unknown label %d", l)
		return
	}
	if f.labels[l] >= 0 {
		f.fail("label %d bound twice", l)
		return
	}
	pc := len(f.code)
	f.labels[l] = pc
	for _, site := range f.patches[l] {
		f.code[site].Target = int32(pc)
	}
	delete(f.patches, l)
	delete(f.unbound, l)
}

// Here creates and binds a label at the current position, for backward
// branches: top := f.Here(); ...; f.Bne(r1, r2, top).
func (f *FuncBuilder) Here() Label {
	l := f.NewLabel()
	f.Bind(l)
	return l
}

func (f *FuncBuilder) fail(format string, args ...any) {
	f.b.errs = append(f.b.errs, fmt.Errorf("vm: function %q: "+format, append([]any{f.name}, args...)...))
}

func (f *FuncBuilder) emit(in Instr) *FuncBuilder {
	f.code = append(f.code, in)
	return f
}

func (f *FuncBuilder) emitBranch(op Op, ra, rb Reg, l Label) *FuncBuilder {
	pc := len(f.code)
	target := int32(-1)
	if int(l) < len(f.labels) && f.labels[l] >= 0 {
		target = int32(f.labels[l])
	} else {
		f.patches[l] = append(f.patches[l], pc)
	}
	return f.emit(Instr{Op: op, Ra: ra, Rb: rb, Target: target})
}

// --- integer ---

// Movi emits rd <- imm.
func (f *FuncBuilder) Movi(rd Reg, imm int64) *FuncBuilder {
	return f.emit(Instr{Op: OpMovi, Rd: rd, Imm: imm})
}

// MoviU emits rd <- imm for an unsigned 64-bit immediate (e.g. addresses).
func (f *FuncBuilder) MoviU(rd Reg, imm uint64) *FuncBuilder {
	return f.emit(Instr{Op: OpMovi, Rd: rd, Imm: int64(imm)})
}

// Mov emits rd <- ra.
func (f *FuncBuilder) Mov(rd, ra Reg) *FuncBuilder {
	return f.emit(Instr{Op: OpMov, Rd: rd, Ra: ra})
}

// Add emits rd <- ra + rb.
func (f *FuncBuilder) Add(rd, ra, rb Reg) *FuncBuilder {
	return f.emit(Instr{Op: OpAdd, Rd: rd, Ra: ra, Rb: rb})
}

// Sub emits rd <- ra - rb.
func (f *FuncBuilder) Sub(rd, ra, rb Reg) *FuncBuilder {
	return f.emit(Instr{Op: OpSub, Rd: rd, Ra: ra, Rb: rb})
}

// Mul emits rd <- ra * rb.
func (f *FuncBuilder) Mul(rd, ra, rb Reg) *FuncBuilder {
	return f.emit(Instr{Op: OpMul, Rd: rd, Ra: ra, Rb: rb})
}

// Div emits rd <- ra / rb (signed).
func (f *FuncBuilder) Div(rd, ra, rb Reg) *FuncBuilder {
	return f.emit(Instr{Op: OpDiv, Rd: rd, Ra: ra, Rb: rb})
}

// Rem emits rd <- ra % rb (signed).
func (f *FuncBuilder) Rem(rd, ra, rb Reg) *FuncBuilder {
	return f.emit(Instr{Op: OpRem, Rd: rd, Ra: ra, Rb: rb})
}

// And emits rd <- ra & rb.
func (f *FuncBuilder) And(rd, ra, rb Reg) *FuncBuilder {
	return f.emit(Instr{Op: OpAnd, Rd: rd, Ra: ra, Rb: rb})
}

// Or emits rd <- ra | rb.
func (f *FuncBuilder) Or(rd, ra, rb Reg) *FuncBuilder {
	return f.emit(Instr{Op: OpOr, Rd: rd, Ra: ra, Rb: rb})
}

// Xor emits rd <- ra ^ rb.
func (f *FuncBuilder) Xor(rd, ra, rb Reg) *FuncBuilder {
	return f.emit(Instr{Op: OpXor, Rd: rd, Ra: ra, Rb: rb})
}

// Shl emits rd <- ra << rb.
func (f *FuncBuilder) Shl(rd, ra, rb Reg) *FuncBuilder {
	return f.emit(Instr{Op: OpShl, Rd: rd, Ra: ra, Rb: rb})
}

// Shr emits rd <- ra >> rb (logical).
func (f *FuncBuilder) Shr(rd, ra, rb Reg) *FuncBuilder {
	return f.emit(Instr{Op: OpShr, Rd: rd, Ra: ra, Rb: rb})
}

// Sar emits rd <- ra >> rb (arithmetic).
func (f *FuncBuilder) Sar(rd, ra, rb Reg) *FuncBuilder {
	return f.emit(Instr{Op: OpSar, Rd: rd, Ra: ra, Rb: rb})
}

// Addi emits rd <- ra + imm.
func (f *FuncBuilder) Addi(rd, ra Reg, imm int64) *FuncBuilder {
	return f.emit(Instr{Op: OpAddi, Rd: rd, Ra: ra, Imm: imm})
}

// Muli emits rd <- ra * imm.
func (f *FuncBuilder) Muli(rd, ra Reg, imm int64) *FuncBuilder {
	return f.emit(Instr{Op: OpMuli, Rd: rd, Ra: ra, Imm: imm})
}

// Andi emits rd <- ra & imm.
func (f *FuncBuilder) Andi(rd, ra Reg, imm int64) *FuncBuilder {
	return f.emit(Instr{Op: OpAndi, Rd: rd, Ra: ra, Imm: imm})
}

// Ori emits rd <- ra | imm.
func (f *FuncBuilder) Ori(rd, ra Reg, imm int64) *FuncBuilder {
	return f.emit(Instr{Op: OpOri, Rd: rd, Ra: ra, Imm: imm})
}

// Xori emits rd <- ra ^ imm.
func (f *FuncBuilder) Xori(rd, ra Reg, imm int64) *FuncBuilder {
	return f.emit(Instr{Op: OpXori, Rd: rd, Ra: ra, Imm: imm})
}

// Shli emits rd <- ra << imm.
func (f *FuncBuilder) Shli(rd, ra Reg, imm int64) *FuncBuilder {
	return f.emit(Instr{Op: OpShli, Rd: rd, Ra: ra, Imm: imm})
}

// Shri emits rd <- ra >> imm (logical).
func (f *FuncBuilder) Shri(rd, ra Reg, imm int64) *FuncBuilder {
	return f.emit(Instr{Op: OpShri, Rd: rd, Ra: ra, Imm: imm})
}

// Slt emits rd <- (ra < rb) signed.
func (f *FuncBuilder) Slt(rd, ra, rb Reg) *FuncBuilder {
	return f.emit(Instr{Op: OpSlt, Rd: rd, Ra: ra, Rb: rb})
}

// Sltu emits rd <- (ra < rb) unsigned.
func (f *FuncBuilder) Sltu(rd, ra, rb Reg) *FuncBuilder {
	return f.emit(Instr{Op: OpSltu, Rd: rd, Ra: ra, Rb: rb})
}

// Seq emits rd <- (ra == rb).
func (f *FuncBuilder) Seq(rd, ra, rb Reg) *FuncBuilder {
	return f.emit(Instr{Op: OpSeq, Rd: rd, Ra: ra, Rb: rb})
}

// --- floating point ---

// FMovi emits fd <- imm.
func (f *FuncBuilder) FMovi(fd FReg, imm float64) *FuncBuilder {
	return f.emit(Instr{Op: OpFMovi, Rd: Reg(fd), Imm: int64(math.Float64bits(imm))})
}

// FMov emits fd <- fa.
func (f *FuncBuilder) FMov(fd, fa FReg) *FuncBuilder {
	return f.emit(Instr{Op: OpFMov, Rd: Reg(fd), Ra: Reg(fa)})
}

// FAdd emits fd <- fa + fb.
func (f *FuncBuilder) FAdd(fd, fa, fb FReg) *FuncBuilder {
	return f.emit(Instr{Op: OpFAdd, Rd: Reg(fd), Ra: Reg(fa), Rb: Reg(fb)})
}

// FSub emits fd <- fa - fb.
func (f *FuncBuilder) FSub(fd, fa, fb FReg) *FuncBuilder {
	return f.emit(Instr{Op: OpFSub, Rd: Reg(fd), Ra: Reg(fa), Rb: Reg(fb)})
}

// FMul emits fd <- fa * fb.
func (f *FuncBuilder) FMul(fd, fa, fb FReg) *FuncBuilder {
	return f.emit(Instr{Op: OpFMul, Rd: Reg(fd), Ra: Reg(fa), Rb: Reg(fb)})
}

// FDiv emits fd <- fa / fb.
func (f *FuncBuilder) FDiv(fd, fa, fb FReg) *FuncBuilder {
	return f.emit(Instr{Op: OpFDiv, Rd: Reg(fd), Ra: Reg(fa), Rb: Reg(fb)})
}

// FNeg emits fd <- -fa.
func (f *FuncBuilder) FNeg(fd, fa FReg) *FuncBuilder {
	return f.emit(Instr{Op: OpFNeg, Rd: Reg(fd), Ra: Reg(fa)})
}

// FAbs emits fd <- |fa|.
func (f *FuncBuilder) FAbs(fd, fa FReg) *FuncBuilder {
	return f.emit(Instr{Op: OpFAbs, Rd: Reg(fd), Ra: Reg(fa)})
}

// FSqrt emits fd <- sqrt(fa).
func (f *FuncBuilder) FSqrt(fd, fa FReg) *FuncBuilder {
	return f.emit(Instr{Op: OpFSqrt, Rd: Reg(fd), Ra: Reg(fa)})
}

// FMin emits fd <- min(fa, fb).
func (f *FuncBuilder) FMin(fd, fa, fb FReg) *FuncBuilder {
	return f.emit(Instr{Op: OpFMin, Rd: Reg(fd), Ra: Reg(fa), Rb: Reg(fb)})
}

// FMax emits fd <- max(fa, fb).
func (f *FuncBuilder) FMax(fd, fa, fb FReg) *FuncBuilder {
	return f.emit(Instr{Op: OpFMax, Rd: Reg(fd), Ra: Reg(fa), Rb: Reg(fb)})
}

// ItoF emits fd <- float64(ra).
func (f *FuncBuilder) ItoF(fd FReg, ra Reg) *FuncBuilder {
	return f.emit(Instr{Op: OpItoF, Rd: Reg(fd), Ra: ra})
}

// FtoI emits rd <- int64(fa).
func (f *FuncBuilder) FtoI(rd Reg, fa FReg) *FuncBuilder {
	return f.emit(Instr{Op: OpFtoI, Rd: rd, Ra: Reg(fa)})
}

// FCmp emits rd <- -1/0/+1 comparing fa with fb.
func (f *FuncBuilder) FCmp(rd Reg, fa, fb FReg) *FuncBuilder {
	return f.emit(Instr{Op: OpFCmp, Rd: rd, Ra: Reg(fa), Rb: Reg(fb)})
}

// --- memory ---

// Load emits rd <- mem[ra+off] with the given access size, zero-extended.
func (f *FuncBuilder) Load(rd, ra Reg, off int64, size uint8) *FuncBuilder {
	return f.emit(Instr{Op: OpLoad, Rd: rd, Ra: ra, Imm: off, Size: size})
}

// LoadS is Load with sign extension.
func (f *FuncBuilder) LoadS(rd, ra Reg, off int64, size uint8) *FuncBuilder {
	return f.emit(Instr{Op: OpLoadS, Rd: rd, Ra: ra, Imm: off, Size: size})
}

// Store emits mem[ra+off] <- rb with the given access size.
func (f *FuncBuilder) Store(ra Reg, off int64, rb Reg, size uint8) *FuncBuilder {
	return f.emit(Instr{Op: OpStore, Ra: ra, Rb: rb, Imm: off, Size: size})
}

// FLoad emits fd <- mem[ra+off] as a float64.
func (f *FuncBuilder) FLoad(fd FReg, ra Reg, off int64) *FuncBuilder {
	return f.emit(Instr{Op: OpFLoad, Rd: Reg(fd), Ra: ra, Imm: off, Size: 8})
}

// FStore emits mem[ra+off] <- fa as a float64.
func (f *FuncBuilder) FStore(ra Reg, off int64, fa FReg) *FuncBuilder {
	return f.emit(Instr{Op: OpFStore, Ra: ra, Rb: Reg(fa), Imm: off, Size: 8})
}

// --- control ---

// Br emits an unconditional jump to l.
func (f *FuncBuilder) Br(l Label) *FuncBuilder { return f.emitBranch(OpBr, 0, 0, l) }

// Beq emits a branch to l when ra == rb.
func (f *FuncBuilder) Beq(ra, rb Reg, l Label) *FuncBuilder { return f.emitBranch(OpBeq, ra, rb, l) }

// Bne emits a branch to l when ra != rb.
func (f *FuncBuilder) Bne(ra, rb Reg, l Label) *FuncBuilder { return f.emitBranch(OpBne, ra, rb, l) }

// Blt emits a branch to l when ra < rb (signed).
func (f *FuncBuilder) Blt(ra, rb Reg, l Label) *FuncBuilder { return f.emitBranch(OpBlt, ra, rb, l) }

// Bge emits a branch to l when ra >= rb (signed).
func (f *FuncBuilder) Bge(ra, rb Reg, l Label) *FuncBuilder { return f.emitBranch(OpBge, ra, rb, l) }

// Bltu emits a branch to l when ra < rb (unsigned).
func (f *FuncBuilder) Bltu(ra, rb Reg, l Label) *FuncBuilder { return f.emitBranch(OpBltu, ra, rb, l) }

// Bgeu emits a branch to l when ra >= rb (unsigned).
func (f *FuncBuilder) Bgeu(ra, rb Reg, l Label) *FuncBuilder { return f.emitBranch(OpBgeu, ra, rb, l) }

// Call emits a call to the named function (resolved at Build).
func (f *FuncBuilder) Call(name string) *FuncBuilder {
	if f.calls == nil {
		f.calls = make(map[int]string)
	}
	f.calls[len(f.code)] = name
	return f.emit(Instr{Op: OpCall, Target: -1})
}

// Ret emits a return.
func (f *FuncBuilder) Ret() *FuncBuilder { return f.emit(Instr{Op: OpRet}) }

// Halt emits program termination.
func (f *FuncBuilder) Halt() *FuncBuilder { return f.emit(Instr{Op: OpHalt}) }

// Alloc emits rd <- alloc(ra) bytes from the heap.
func (f *FuncBuilder) Alloc(rd, ra Reg) *FuncBuilder {
	return f.emit(Instr{Op: OpAlloc, Rd: rd, Ra: ra})
}

// Sys emits a syscall.
func (f *FuncBuilder) Sys(s Sys) *FuncBuilder {
	return f.emit(Instr{Op: OpSys, Imm: int64(s)})
}

// Nop emits a no-op.
func (f *FuncBuilder) Nop() *FuncBuilder { return f.emit(Instr{Op: OpNop}) }

package vm

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strings"
)

// Disassemble renders an instruction in the assembler's syntax, resolving
// branch targets to pc-relative labels and call targets to function names
// when a program is provided (p may be nil).
func (in Instr) Disassemble(p *Program) string {
	r := func(x Reg) string { return fmt.Sprintf("r%d", x) }
	f := func(x Reg) string { return fmt.Sprintf("f%d", x) }
	switch in.Op {
	case OpNop, OpRet, OpHalt:
		return in.Op.String()
	case OpMovi:
		return fmt.Sprintf("movi %s, %d", r(in.Rd), in.Imm)
	case OpMov:
		return fmt.Sprintf("mov %s, %s", r(in.Rd), r(in.Ra))
	case OpAdd, OpSub, OpMul, OpDiv, OpRem, OpAnd, OpOr, OpXor,
		OpShl, OpShr, OpSar, OpSlt, OpSltu, OpSeq:
		return fmt.Sprintf("%s %s, %s, %s", in.Op, r(in.Rd), r(in.Ra), r(in.Rb))
	case OpAddi, OpMuli, OpAndi, OpOri, OpXori, OpShli, OpShri:
		return fmt.Sprintf("%s %s, %s, %d", in.Op, r(in.Rd), r(in.Ra), in.Imm)
	case OpFMovi:
		return fmt.Sprintf("fmovi %s, %v", f(in.Rd), math.Float64frombits(uint64(in.Imm)))
	case OpFMov, OpFNeg, OpFAbs, OpFSqrt:
		return fmt.Sprintf("%s %s, %s", in.Op, f(in.Rd), f(in.Ra))
	case OpFAdd, OpFSub, OpFMul, OpFDiv, OpFMin, OpFMax:
		return fmt.Sprintf("%s %s, %s, %s", in.Op, f(in.Rd), f(in.Ra), f(in.Rb))
	case OpItoF:
		return fmt.Sprintf("itof %s, %s", f(in.Rd), r(in.Ra))
	case OpFtoI:
		return fmt.Sprintf("ftoi %s, %s", r(in.Rd), f(in.Ra))
	case OpFCmp:
		return fmt.Sprintf("fcmp %s, %s, %s", r(in.Rd), f(in.Ra), f(in.Rb))
	case OpLoad:
		return fmt.Sprintf("load%d %s, %s, %d", in.Size, r(in.Rd), r(in.Ra), in.Imm)
	case OpLoadS:
		return fmt.Sprintf("loads%d %s, %s, %d", in.Size, r(in.Rd), r(in.Ra), in.Imm)
	case OpStore:
		return fmt.Sprintf("store%d %s, %d, %s", in.Size, r(in.Ra), in.Imm, r(in.Rb))
	case OpFLoad:
		return fmt.Sprintf("fload %s, %s, %d", f(in.Rd), r(in.Ra), in.Imm)
	case OpFStore:
		return fmt.Sprintf("fstore %s, %d, %s", r(in.Ra), in.Imm, f(in.Rb))
	case OpBr:
		return fmt.Sprintf("br L%d", in.Target)
	case OpBeq, OpBne, OpBlt, OpBge, OpBltu, OpBgeu:
		return fmt.Sprintf("%s %s, %s, L%d", in.Op, r(in.Ra), r(in.Rb), in.Target)
	case OpCall:
		if p != nil {
			return fmt.Sprintf("call %s", p.FuncName(int(in.Target)))
		}
		return fmt.Sprintf("call #%d", in.Target)
	case OpAlloc:
		return fmt.Sprintf("alloc %s, %s", r(in.Rd), r(in.Ra))
	case OpSys:
		return fmt.Sprintf("sys %s", Sys(in.Imm).Name())
	}
	return fmt.Sprintf("?%d", uint8(in.Op))
}

// WriteListing renders the whole program as annotated assembler text: data
// segments, then every function with labels at branch targets.
func (p *Program) WriteListing(w io.Writer) error {
	bw := bufio.NewWriter(w)
	pr := func(format string, args ...any) {
		fmt.Fprintf(bw, format+"\n", args...)
	}
	pr("; %d functions, %d instructions, entry %s",
		len(p.Funcs), p.NumInstrs(), p.FuncName(p.Entry))
	for _, s := range p.Segments {
		pr(".data %s  ; %d bytes at %#x", s.Name, len(s.Data), s.Addr)
	}
	for _, fn := range p.Funcs {
		pr("")
		pr("func %s {", fn.Name)
		// Collect branch targets for labels.
		targets := map[int32]bool{}
		for _, in := range fn.Code {
			if in.IsBranch() || in.Op == OpBr {
				targets[in.Target] = true
			}
		}
		for pc, in := range fn.Code {
			if targets[int32(pc)] {
				pr("L%d:", pc)
			}
			pr("    %-30s ; +%d", in.Disassemble(p), pc)
		}
		pr("}")
	}
	return bw.Flush()
}

// String renders a one-line instruction (without program context).
func (in Instr) String() string {
	return strings.TrimSpace(in.Disassemble(nil))
}

package vm

import (
	"context"
	"errors"
	"fmt"
	"math"
)

// Machine executes a Program, optionally driving an Observer with the
// instruction-level primitive stream. One Machine runs one program to
// completion; create a fresh Machine per run.
type Machine struct {
	// Regs and FRegs are the architectural register files; exported so
	// tests and host integrations can inspect final state.
	Regs  [NumRegs]int64
	FRegs [NumFRegs]float64

	// Mem is the program's address space.
	Mem *Memory

	// MaxInstrs aborts the run after this many retired instructions
	// (0 means the DefaultMaxInstrs safety net).
	MaxInstrs uint64

	// MaxCallDepth aborts runaway recursion (0 means DefaultMaxCallDepth).
	MaxCallDepth int

	// StopCheck, when non-nil, is polled every StopCheckInterval retired
	// instructions; a non-nil return aborts the run with that error while
	// keeping the state collected so far (observers still see ProgramEnd).
	// Callers use it to enforce resource budgets the machine itself does
	// not know about.
	StopCheck func() error

	prog    *Program
	obs     Observer
	instret uint64
	heap    uint64
	rng     uint64

	input    []byte
	inputPos int
	outBytes uint64

	frames []frame
}

type frame struct {
	regs  [NumRegs]int64
	fregs [NumFRegs]float64
	fn    int32
	pc    int32
}

// Run limits that keep buggy programs from hanging the host.
const (
	DefaultMaxInstrs    = 2_000_000_000
	DefaultMaxCallDepth = 1 << 14
)

// StopCheckInterval is the cancellation/budget polling cadence in retired
// instructions: frequent enough that a cancelled run stops well inside
// 100ms, rare enough to stay invisible in the dispatch loop.
const StopCheckInterval = 1 << 14

// CancelError reports a run stopped cooperatively because its context was
// done. It wraps the context's error, so errors.Is(err, context.Canceled)
// and errors.Is(err, context.DeadlineExceeded) both see through it.
type CancelError struct {
	Instrs uint64 // instructions retired when the run stopped
	Cause  error  // the context's error
}

func (e *CancelError) Error() string {
	return fmt.Sprintf("vm: run cancelled after %d instructions: %v", e.Instrs, e.Cause)
}

// Unwrap exposes the context error.
func (e *CancelError) Unwrap() error { return e.Cause }

// NewMachine returns a machine with fresh memory and a deterministic RNG.
func NewMachine() *Machine {
	return &Machine{Mem: NewMemory(), rng: 0x9E3779B97F4A7C15}
}

// SetInput provides the byte stream consumed by SysRead.
func (m *Machine) SetInput(b []byte) { m.input = b }

// InstrCount returns the number of retired instructions so far — the
// platform-independent time proxy used throughout the methodology.
func (m *Machine) InstrCount() uint64 { return m.instret }

// OutputBytes returns the total bytes consumed by SysWrite.
func (m *Machine) OutputBytes() uint64 { return m.outBytes }

// HeapUsed returns the number of heap bytes bump-allocated by OpAlloc.
func (m *Machine) HeapUsed() uint64 { return m.heap - HeapBase }

// CallDepth returns the live call-stack depth. It is a telemetry gauge:
// sampled at the StopCheck poll point it distinguishes a run grinding in a
// hot loop from one descending into deep recursion.
func (m *Machine) CallDepth() int { return len(m.frames) }

// RunStats summarizes a completed run.
type RunStats struct {
	Instrs      uint64 // retired instructions
	OutputBytes uint64 // bytes written via SysWrite
	HeapBytes   uint64 // bytes bump-allocated
	MemPages    int    // memory pages materialized
}

// Run executes the program to completion, driving obs (which may be nil for
// an uninstrumented "native" run) with the primitive stream.
func (m *Machine) Run(p *Program, obs Observer) (RunStats, error) {
	return m.RunContext(context.Background(), p, obs)
}

// RunContext is Run with cooperative cancellation: the machine polls ctx
// (and StopCheck, if set) every StopCheckInterval retired instructions and
// stops with a *CancelError when the context is done. Observers still
// receive ProgramEnd on early stops, so partially collected profiles stay
// internally consistent, and the returned stats describe the work actually
// performed.
func (m *Machine) RunContext(ctx context.Context, p *Program, obs Observer) (RunStats, error) {
	if err := p.Validate(); err != nil {
		return RunStats{}, err
	}
	if p.index == nil {
		p.buildIndex()
	}
	m.prog = p
	m.obs = obs
	m.heap = HeapBase
	m.instret = 0
	m.inputPos = 0
	m.outBytes = 0
	m.frames = m.frames[:0]
	for _, s := range p.Segments {
		m.Mem.WriteBytes(s.Addr, s.Data)
	}
	maxInstrs := m.MaxInstrs
	if maxInstrs == 0 {
		maxInstrs = DefaultMaxInstrs
	}
	maxDepth := m.MaxCallDepth
	if maxDepth == 0 {
		maxDepth = DefaultMaxCallDepth
	}

	if obs != nil {
		obs.ProgramStart(p, m)
		obs.FnEnter(p.Entry)
	}
	err := m.loop(ctx, p, obs, maxInstrs, maxDepth)
	if obs != nil {
		obs.ProgramEnd()
	}
	stats := RunStats{
		Instrs:      m.instret,
		OutputBytes: m.outBytes,
		HeapBytes:   m.heap - HeapBase,
		MemPages:    m.Mem.PagesAllocated(),
	}
	return stats, err
}

// errHalt signals normal termination from inside the dispatch loop.
var errHalt = errors.New("halt")

func (m *Machine) loop(ctx context.Context, p *Program, obs Observer, maxInstrs uint64, maxDepth int) error {
	fn := int32(p.Entry)
	code := p.Funcs[fn].Code
	pc := int32(0)

	fault := func(format string, args ...any) error {
		return fmt.Errorf("vm: %s+%d: %s", p.FuncName(int(fn)), pc, fmt.Sprintf(format, args...))
	}

	done := ctx.Done()
	poll := done != nil || m.StopCheck != nil

	for {
		if int(pc) >= len(code) {
			return fault("fell off end of function")
		}
		in := &code[pc]
		m.instret++
		if m.instret > maxInstrs {
			return fault("instruction budget of %d exhausted", maxInstrs)
		}
		if poll && m.instret&(StopCheckInterval-1) == 0 {
			select {
			case <-done:
				return &CancelError{Instrs: m.instret, Cause: context.Cause(ctx)}
			default:
			}
			if m.StopCheck != nil {
				if err := m.StopCheck(); err != nil {
					return err
				}
			}
		}
		nextPC := pc + 1

		switch in.Op {
		case OpNop:

		case OpMovi:
			m.Regs[in.Rd] = in.Imm
		case OpMov:
			m.Regs[in.Rd] = m.Regs[in.Ra]
		case OpAdd:
			m.Regs[in.Rd] = m.Regs[in.Ra] + m.Regs[in.Rb]
		case OpSub:
			m.Regs[in.Rd] = m.Regs[in.Ra] - m.Regs[in.Rb]
		case OpMul:
			m.Regs[in.Rd] = m.Regs[in.Ra] * m.Regs[in.Rb]
		case OpDiv:
			if m.Regs[in.Rb] == 0 {
				return fault("integer divide by zero")
			}
			m.Regs[in.Rd] = m.Regs[in.Ra] / m.Regs[in.Rb]
		case OpRem:
			if m.Regs[in.Rb] == 0 {
				return fault("integer remainder by zero")
			}
			m.Regs[in.Rd] = m.Regs[in.Ra] % m.Regs[in.Rb]
		case OpAnd:
			m.Regs[in.Rd] = m.Regs[in.Ra] & m.Regs[in.Rb]
		case OpOr:
			m.Regs[in.Rd] = m.Regs[in.Ra] | m.Regs[in.Rb]
		case OpXor:
			m.Regs[in.Rd] = m.Regs[in.Ra] ^ m.Regs[in.Rb]
		case OpShl:
			m.Regs[in.Rd] = m.Regs[in.Ra] << (uint64(m.Regs[in.Rb]) & 63)
		case OpShr:
			m.Regs[in.Rd] = int64(uint64(m.Regs[in.Ra]) >> (uint64(m.Regs[in.Rb]) & 63))
		case OpSar:
			m.Regs[in.Rd] = m.Regs[in.Ra] >> (uint64(m.Regs[in.Rb]) & 63)
		case OpAddi:
			m.Regs[in.Rd] = m.Regs[in.Ra] + in.Imm
		case OpMuli:
			m.Regs[in.Rd] = m.Regs[in.Ra] * in.Imm
		case OpAndi:
			m.Regs[in.Rd] = m.Regs[in.Ra] & in.Imm
		case OpOri:
			m.Regs[in.Rd] = m.Regs[in.Ra] | in.Imm
		case OpXori:
			m.Regs[in.Rd] = m.Regs[in.Ra] ^ in.Imm
		case OpShli:
			m.Regs[in.Rd] = m.Regs[in.Ra] << (uint64(in.Imm) & 63)
		case OpShri:
			m.Regs[in.Rd] = int64(uint64(m.Regs[in.Ra]) >> (uint64(in.Imm) & 63))
		case OpSlt:
			m.Regs[in.Rd] = b2i(m.Regs[in.Ra] < m.Regs[in.Rb])
		case OpSltu:
			m.Regs[in.Rd] = b2i(uint64(m.Regs[in.Ra]) < uint64(m.Regs[in.Rb]))
		case OpSeq:
			m.Regs[in.Rd] = b2i(m.Regs[in.Ra] == m.Regs[in.Rb])

		case OpFMovi:
			m.FRegs[in.Rd] = math.Float64frombits(uint64(in.Imm))
		case OpFMov:
			m.FRegs[in.Rd] = m.FRegs[in.Ra]
		case OpFAdd:
			m.FRegs[in.Rd] = m.FRegs[in.Ra] + m.FRegs[in.Rb]
		case OpFSub:
			m.FRegs[in.Rd] = m.FRegs[in.Ra] - m.FRegs[in.Rb]
		case OpFMul:
			m.FRegs[in.Rd] = m.FRegs[in.Ra] * m.FRegs[in.Rb]
		case OpFDiv:
			m.FRegs[in.Rd] = m.FRegs[in.Ra] / m.FRegs[in.Rb]
		case OpFNeg:
			m.FRegs[in.Rd] = -m.FRegs[in.Ra]
		case OpFAbs:
			m.FRegs[in.Rd] = math.Abs(m.FRegs[in.Ra])
		case OpFSqrt:
			m.FRegs[in.Rd] = math.Sqrt(m.FRegs[in.Ra])
		case OpFMin:
			m.FRegs[in.Rd] = math.Min(m.FRegs[in.Ra], m.FRegs[in.Rb])
		case OpFMax:
			m.FRegs[in.Rd] = math.Max(m.FRegs[in.Ra], m.FRegs[in.Rb])
		case OpItoF:
			m.FRegs[in.Rd] = float64(m.Regs[in.Ra])
		case OpFtoI:
			m.Regs[in.Rd] = int64(m.FRegs[in.Ra])
		case OpFCmp:
			a, b := m.FRegs[in.Ra], m.FRegs[in.Rb]
			switch {
			case a < b:
				m.Regs[in.Rd] = -1
			case a > b:
				m.Regs[in.Rd] = 1
			default:
				m.Regs[in.Rd] = 0
			}

		case OpLoad, OpLoadS:
			addr := uint64(m.Regs[in.Ra] + in.Imm)
			v := m.Mem.Load(addr, in.Size)
			if in.Op == OpLoadS {
				v = signExtend(v, in.Size)
			}
			m.Regs[in.Rd] = int64(v)
			if obs != nil {
				obs.MemRead(addr, in.Size)
			}
		case OpStore:
			addr := uint64(m.Regs[in.Ra] + in.Imm)
			m.Mem.Store(addr, in.Size, uint64(m.Regs[in.Rb]))
			if obs != nil {
				obs.MemWrite(addr, in.Size)
			}
		case OpFLoad:
			addr := uint64(m.Regs[in.Ra] + in.Imm)
			m.FRegs[in.Rd] = math.Float64frombits(m.Mem.Load(addr, 8))
			if obs != nil {
				obs.MemRead(addr, 8)
			}
		case OpFStore:
			addr := uint64(m.Regs[in.Ra] + in.Imm)
			m.Mem.Store(addr, 8, math.Float64bits(m.FRegs[in.Rb]))
			if obs != nil {
				obs.MemWrite(addr, 8)
			}

		case OpBr:
			nextPC = in.Target
		case OpBeq, OpBne, OpBlt, OpBge, OpBltu, OpBgeu:
			taken := false
			a, b := m.Regs[in.Ra], m.Regs[in.Rb]
			switch in.Op {
			case OpBeq:
				taken = a == b
			case OpBne:
				taken = a != b
			case OpBlt:
				taken = a < b
			case OpBge:
				taken = a >= b
			case OpBltu:
				taken = uint64(a) < uint64(b)
			case OpBgeu:
				taken = uint64(a) >= uint64(b)
			}
			if taken {
				nextPC = in.Target
			}
			if obs != nil {
				obs.Branch(uint64(fn)<<20|uint64(uint32(pc)), taken)
			}

		case OpCall:
			if len(m.frames) >= maxDepth {
				return fault("call depth limit %d exceeded", maxDepth)
			}
			m.frames = append(m.frames, frame{
				regs:  m.Regs,
				fregs: m.FRegs,
				fn:    fn,
				pc:    nextPC,
			})
			fn = in.Target
			code = p.Funcs[fn].Code
			nextPC = 0
			if obs != nil {
				obs.FnEnter(int(fn))
			}

		case OpRet:
			if len(m.frames) == 0 {
				// Returning from the entry function terminates the
				// program, like returning from main.
				if obs != nil {
					obs.FnLeave(int(fn))
				}
				pc = nextPC
				return nil
			}
			if obs != nil {
				obs.FnLeave(int(fn))
			}
			fr := &m.frames[len(m.frames)-1]
			r0, f0 := m.Regs[R0], m.FRegs[F0]
			m.Regs = fr.regs
			m.FRegs = fr.fregs
			m.Regs[R0] = r0
			m.FRegs[F0] = f0
			fn = fr.fn
			nextPC = fr.pc
			code = p.Funcs[fn].Code
			m.frames = m.frames[:len(m.frames)-1]

		case OpHalt:
			if obs != nil {
				obs.FnLeave(int(fn))
			}
			return nil

		case OpAlloc:
			size := uint64(m.Regs[in.Ra])
			if size > 1<<32 {
				return fault("allocation of %d bytes too large", size)
			}
			m.Regs[in.Rd] = int64(m.heap)
			m.heap = align(m.heap+size, 8)

		case OpSys:
			m.syscall(Sys(in.Imm), obs)

		default:
			return fault("unimplemented opcode")
		}

		if obs != nil {
			if c := classOf[in.Op]; c != ClassNone {
				obs.Op(c)
			}
		}
		pc = nextPC
	}
}

func (m *Machine) syscall(s Sys, obs Observer) {
	switch s {
	case SysRead:
		addr := uint64(m.Regs[R1])
		want := m.Regs[R2]
		if want < 0 {
			want = 0
		}
		avail := len(m.input) - m.inputPos
		n := int(want)
		if n > avail {
			n = avail
		}
		if n > 0 {
			m.Mem.WriteBytes(addr, m.input[m.inputPos:m.inputPos+n])
			m.inputPos += n
		}
		m.Regs[R0] = int64(n)
		if obs != nil {
			obs.Syscall(s, 0, 0, addr, uint64(n))
		}
	case SysWrite:
		addr := uint64(m.Regs[R1])
		n := m.Regs[R2]
		if n < 0 {
			n = 0
		}
		m.outBytes += uint64(n)
		m.Regs[R0] = n
		if obs != nil {
			obs.Syscall(s, addr, uint64(n), 0, 0)
		}
	case SysRand:
		// xorshift64*: deterministic, decent spread for workload use.
		x := m.rng
		x ^= x >> 12
		x ^= x << 25
		x ^= x >> 27
		m.rng = x
		m.Regs[R0] = int64(x * 0x2545F4914F6CDD1D)
		if obs != nil {
			obs.Syscall(s, 0, 0, 0, 0)
		}
	case SysTime:
		m.Regs[R0] = int64(m.instret)
		if obs != nil {
			obs.Syscall(s, 0, 0, 0, 0)
		}
	}
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

func signExtend(v uint64, size uint8) uint64 {
	switch size {
	case 1:
		return uint64(int64(int8(v)))
	case 2:
		return uint64(int64(int16(v)))
	case 4:
		return uint64(int64(int32(v)))
	}
	return v
}

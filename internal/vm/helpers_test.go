package vm

// mustBuild keeps hand-assembled test programs terse now that Builder
// returns errors instead of panicking; a panic here only ever reports a
// typo in the test's own program.
func mustBuild(b *Builder) *Program {
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	return p
}

// Package vm implements a small register-based virtual instruction set and
// interpreter. It stands in for the native binaries that the paper profiles
// under Valgrind: programs written against this ISA emit the same primitive
// stream — memory accesses, arithmetic operations, calls/returns, branches
// and syscalls — that a dynamic binary instrumentation framework observes,
// which is all the Sigil methodology consumes.
package vm

import "fmt"

// Reg names an integer register. The machine has 32 integer registers
// (R0..R31) of 64 bits each. By convention R0 carries integer return values
// and R1..R15 carry call arguments; the machine snapshots and restores the
// full register file around calls, so every register is callee-saved except
// the return registers R0 and F0.
type Reg uint8

// Integer registers.
const (
	R0 Reg = iota
	R1
	R2
	R3
	R4
	R5
	R6
	R7
	R8
	R9
	R10
	R11
	R12
	R13
	R14
	R15
	R16
	R17
	R18
	R19
	R20
	R21
	R22
	R23
	R24
	R25
	R26
	R27
	R28
	R29
	R30
	R31
)

// NumRegs is the size of the integer register file.
const NumRegs = 32

// FReg names a floating-point register. The machine has 16 float64 registers
// (F0..F15); F0 carries floating-point return values.
type FReg uint8

// Floating-point registers.
const (
	F0 FReg = iota
	F1
	F2
	F3
	F4
	F5
	F6
	F7
	F8
	F9
	F10
	F11
	F12
	F13
	F14
	F15
)

// NumFRegs is the size of the floating-point register file.
const NumFRegs = 16

// Op is a virtual-ISA opcode.
type Op uint8

// Opcodes. Arithmetic ops name their operand class so the instrumentation
// layer can classify retired operations the way the paper's modified
// Callgrind logs integer and floating-point operations.
const (
	OpNop Op = iota

	// Integer moves and arithmetic: Rd <- Ra op Rb (or immediate forms).
	OpMovi // Rd <- Imm
	OpMov  // Rd <- Ra
	OpAdd
	OpSub
	OpMul
	OpDiv // signed; divide by zero traps
	OpRem
	OpAnd
	OpOr
	OpXor
	OpShl
	OpShr // logical shift right
	OpSar // arithmetic shift right
	OpAddi
	OpMuli
	OpAndi
	OpOri
	OpXori
	OpShli
	OpShri

	// Comparisons: Rd <- 1 if Ra cmp Rb else 0.
	OpSlt  // signed less-than
	OpSltu // unsigned less-than
	OpSeq

	// Floating point: Fd <- Fa op Fb.
	OpFMovi // Fd <- float64 immediate (bits carried in Imm)
	OpFMov
	OpFAdd
	OpFSub
	OpFMul
	OpFDiv
	OpFNeg
	OpFAbs
	OpFSqrt
	OpFMin
	OpFMax

	// Conversions between the register files.
	OpItoF // Fd <- float64(Ra)
	OpFtoI // Rd <- int64(Fa), truncating
	OpFCmp // Rd <- -1/0/1 comparing Fa, Fb

	// Memory: address is Ra+Imm; Size selects 1, 2, 4 or 8 bytes.
	// Loads zero-extend; OpLoadS sign-extends.
	OpLoad
	OpLoadS
	OpStore
	OpFLoad  // 8-byte float64 load into Fd
	OpFStore // 8-byte float64 store from Fa

	// Control flow. Branch targets are instruction indices within the
	// function, resolved by the builder/assembler.
	OpBr
	OpBeq
	OpBne
	OpBlt  // signed
	OpBge  // signed
	OpBltu // unsigned
	OpBgeu // unsigned
	OpCall // Target is a function index in the program
	OpRet
	OpHalt

	// OpAlloc bump-allocates Ra bytes from the heap; Rd <- base address.
	// Allocation is 8-byte aligned and never freed (the profiled programs
	// are short-lived, matching the paper's run-once workloads).
	OpAlloc

	// OpSys invokes a host syscall; Imm is a Sys number. Register
	// conventions are documented with each Sys constant.
	OpSys

	opCount // number of opcodes; keep last
)

// Sys identifies a host syscall. The paper notes system calls are not fully
// visible to Valgrind: Sigil records their names and input/output byte counts
// but cannot see inside them. The machine reports syscalls to observers with
// exactly that information.
type Sys uint8

const (
	// SysRead fills memory at R1 with up to R2 bytes from the program's
	// input stream; R0 <- bytes actually read (0 at end of input).
	SysRead Sys = iota
	// SysWrite consumes R2 bytes at R1 into the program's output sink;
	// R0 <- bytes written.
	SysWrite
	// SysRand writes a pseudo-random uint64 to R0 (xorshift64 seeded by
	// the machine; deterministic across runs).
	SysRand
	// SysTime writes the retired-instruction count to R0, the
	// platform-independent time proxy used throughout the paper.
	SysTime

	sysCount
)

var sysNames = [...]string{
	SysRead:  "read",
	SysWrite: "write",
	SysRand:  "rand",
	SysTime:  "time",
}

// Name returns the syscall's name as reported to observers.
func (s Sys) Name() string {
	if int(s) < len(sysNames) {
		return sysNames[s]
	}
	return fmt.Sprintf("sys%d", uint8(s))
}

// OpClass classifies a retired operation for cost accounting, mirroring the
// paper's modification of Callgrind to log floating-point and integer
// operations separately.
type OpClass uint8

const (
	ClassNone   OpClass = iota
	ClassIntALU         // add/sub/logic/shift/compare/move
	ClassIntMul
	ClassIntDiv
	ClassFPAdd // fp add/sub/neg/abs/min/max/compare/move
	ClassFPMul
	ClassFPDiv // fp divide and sqrt
	ClassConv  // int<->fp conversion
)

var opClassNames = [...]string{
	ClassNone:   "none",
	ClassIntALU: "ialu",
	ClassIntMul: "imul",
	ClassIntDiv: "idiv",
	ClassFPAdd:  "fpadd",
	ClassFPMul:  "fpmul",
	ClassFPDiv:  "fpdiv",
	ClassConv:   "conv",
}

// String returns a short mnemonic for the class.
func (c OpClass) String() string {
	if int(c) < len(opClassNames) {
		return opClassNames[c]
	}
	return fmt.Sprintf("class%d", uint8(c))
}

// IsFP reports whether the class is a floating-point operation.
func (c OpClass) IsFP() bool {
	return c == ClassFPAdd || c == ClassFPMul || c == ClassFPDiv
}

// IsInt reports whether the class is an integer operation.
func (c OpClass) IsInt() bool {
	return c == ClassIntALU || c == ClassIntMul || c == ClassIntDiv
}

// classOf maps opcodes with an arithmetic cost to their class; opcodes that
// are pure control or memory map to ClassNone.
var classOf = [opCount]OpClass{
	OpMovi: ClassIntALU, OpMov: ClassIntALU,
	OpAdd: ClassIntALU, OpSub: ClassIntALU,
	OpMul: ClassIntMul, OpDiv: ClassIntDiv, OpRem: ClassIntDiv,
	OpAnd: ClassIntALU, OpOr: ClassIntALU, OpXor: ClassIntALU,
	OpShl: ClassIntALU, OpShr: ClassIntALU, OpSar: ClassIntALU,
	OpAddi: ClassIntALU, OpMuli: ClassIntMul,
	OpAndi: ClassIntALU, OpOri: ClassIntALU, OpXori: ClassIntALU,
	OpShli: ClassIntALU, OpShri: ClassIntALU,
	OpSlt: ClassIntALU, OpSltu: ClassIntALU, OpSeq: ClassIntALU,
	OpFMovi: ClassFPAdd, OpFMov: ClassFPAdd,
	OpFAdd: ClassFPAdd, OpFSub: ClassFPAdd,
	OpFMul: ClassFPMul, OpFDiv: ClassFPDiv,
	OpFNeg: ClassFPAdd, OpFAbs: ClassFPAdd, OpFSqrt: ClassFPDiv,
	OpFMin: ClassFPAdd, OpFMax: ClassFPAdd,
	OpItoF: ClassConv, OpFtoI: ClassConv, OpFCmp: ClassFPAdd,
}

var opNames = [opCount]string{
	OpNop: "nop", OpMovi: "movi", OpMov: "mov",
	OpAdd: "add", OpSub: "sub", OpMul: "mul", OpDiv: "div", OpRem: "rem",
	OpAnd: "and", OpOr: "or", OpXor: "xor",
	OpShl: "shl", OpShr: "shr", OpSar: "sar",
	OpAddi: "addi", OpMuli: "muli", OpAndi: "andi", OpOri: "ori",
	OpXori: "xori", OpShli: "shli", OpShri: "shri",
	OpSlt: "slt", OpSltu: "sltu", OpSeq: "seq",
	OpFMovi: "fmovi", OpFMov: "fmov",
	OpFAdd: "fadd", OpFSub: "fsub", OpFMul: "fmul", OpFDiv: "fdiv",
	OpFNeg: "fneg", OpFAbs: "fabs", OpFSqrt: "fsqrt",
	OpFMin: "fmin", OpFMax: "fmax",
	OpItoF: "itof", OpFtoI: "ftoi", OpFCmp: "fcmp",
	OpLoad: "load", OpLoadS: "loads", OpStore: "store",
	OpFLoad: "fload", OpFStore: "fstore",
	OpBr: "br", OpBeq: "beq", OpBne: "bne",
	OpBlt: "blt", OpBge: "bge", OpBltu: "bltu", OpBgeu: "bgeu",
	OpCall: "call", OpRet: "ret", OpHalt: "halt",
	OpAlloc: "alloc", OpSys: "sys",
}

// String returns the opcode mnemonic.
func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op%d", uint8(o))
}

// Instr is one decoded instruction. The same compact struct serves every
// opcode; unused fields are zero.
type Instr struct {
	Op     Op
	Rd     Reg   // destination (integer) or Fd when the op is FP
	Ra     Reg   // first source (integer) or Fa
	Rb     Reg   // second source (integer) or Fb
	Size   uint8 // load/store access size in bytes: 1, 2, 4, 8
	Imm    int64 // immediate / address offset / float64 bits / Sys number
	Target int32 // branch target (instruction index) or callee function index
}

// Class returns the instruction's arithmetic operation class (ClassNone for
// control and memory instructions).
func (i Instr) Class() OpClass { return classOf[i.Op] }

// IsBranch reports whether the instruction is a conditional branch.
func (i Instr) IsBranch() bool {
	switch i.Op {
	case OpBeq, OpBne, OpBlt, OpBge, OpBltu, OpBgeu:
		return true
	}
	return false
}

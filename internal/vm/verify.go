package vm

import (
	"fmt"
	"strings"
)

// This file implements the static program verifier. Validate (program.go)
// checks shallow structural invariants instruction by instruction; Verify
// builds a control-flow graph per function and checks path-sensitive
// properties, so malformed programs fail at build time with a typed
// diagnostic instead of an interpreter fault mid-run:
//
//   - DiagTarget: a branch or call target out of range (also caught by
//     Validate; re-checked here so Verify is safe on unvalidated programs).
//   - DiagFallOff: some path reaches the end of a function body without a
//     ret or halt — the interpreter would fault with pc out of range.
//   - DiagUnreachable: an instruction no path from the function entry can
//     execute, which in generated code always means a miswired label.
//   - DiagNoReturn: a function with no reachable ret or halt can never
//     terminate; since the machine pairs every call with exactly one
//     return, an unreturnable callee breaks call/return pairing for every
//     caller on the stack.
//   - DiagMemory: a memory operand whose address is provably constant and
//     provably outside every declared segment, reserved region, and the
//     heap/stack spaces. Found by constant propagation along the CFG; an
//     address that is merely unknown is never flagged.
//   - DiagSpawn: reserved for spawn/join pairing once the parallel-phase
//     ISA lands (ROADMAP item 1); never emitted today.
type DiagClass uint8

// Diagnostic classes, one per malformed-program family.
const (
	DiagTarget DiagClass = iota
	DiagFallOff
	DiagUnreachable
	DiagNoReturn
	DiagMemory
	DiagSpawn
)

var diagClassNames = [...]string{
	DiagTarget:      "target",
	DiagFallOff:     "fall-off",
	DiagUnreachable: "unreachable",
	DiagNoReturn:    "no-return",
	DiagMemory:      "memory",
	DiagSpawn:       "spawn",
}

// String returns the class's short name.
func (c DiagClass) String() string {
	if int(c) < len(diagClassNames) {
		return diagClassNames[c]
	}
	return fmt.Sprintf("diag%d", uint8(c))
}

// Diag is one verifier finding, locating a malformed instruction (or
// function, when PC is -1) and classifying what is wrong with it.
type Diag struct {
	Class   DiagClass
	Func    string
	PC      int // instruction index, or -1 for a whole-function finding
	Op      Op
	Message string
}

// String renders the diagnostic as "class: func+pc (op): message".
func (d Diag) String() string {
	where := d.Func
	if d.PC >= 0 {
		where = fmt.Sprintf("%s+%d (%s)", d.Func, d.PC, d.Op)
	}
	return fmt.Sprintf("%s: %s: %s", d.Class, where, d.Message)
}

// VerifyError is the typed error returned when verification fails. It
// carries every finding, not just the first, so tooling can report the
// complete picture in one pass.
type VerifyError struct {
	Diags []Diag
}

// Error renders the first diagnostic plus a count of the rest.
func (e *VerifyError) Error() string {
	if len(e.Diags) == 0 {
		return "vm: verify failed"
	}
	msg := "vm: verify: " + e.Diags[0].String()
	if n := len(e.Diags) - 1; n > 0 {
		msg += fmt.Sprintf(" (and %d more)", n)
	}
	return msg
}

// Render writes every diagnostic, one per line.
func (e *VerifyError) Render() string {
	var sb strings.Builder
	for _, d := range e.Diags {
		sb.WriteString(d.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Verify statically checks the program and returns nil or a *VerifyError
// listing every finding. Build runs it automatically after Validate; the
// exported entry point exists so tools can verify programs they did not
// build themselves (sigil-lint -vm).
func (p *Program) Verify() error {
	var diags []Diag
	for _, f := range p.Funcs {
		diags = append(diags, p.verifyFunc(f)...)
	}
	if len(diags) == 0 {
		return nil
	}
	return &VerifyError{Diags: diags}
}

// succs returns the control successors of the instruction at pc, or ok=false
// when a target is out of range (structurally broken, reported separately).
func succs(f *Function, pc int, in Instr) (next []int, ok bool) {
	switch in.Op {
	case OpRet, OpHalt:
		return nil, true
	case OpBr:
		if int(in.Target) < 0 || int(in.Target) >= len(f.Code) {
			return nil, false
		}
		return []int{int(in.Target)}, true
	case OpBeq, OpBne, OpBlt, OpBge, OpBltu, OpBgeu:
		if int(in.Target) < 0 || int(in.Target) >= len(f.Code) {
			return nil, false
		}
		return []int{pc + 1, int(in.Target)}, true
	default:
		return []int{pc + 1}, true
	}
}

func (p *Program) verifyFunc(f *Function) []Diag {
	var diags []Diag
	bad := func(class DiagClass, pc int, format string, args ...any) {
		d := Diag{Class: class, Func: f.Name, PC: pc, Message: fmt.Sprintf(format, args...)}
		if pc >= 0 && pc < len(f.Code) {
			d.Op = f.Code[pc].Op
		}
		diags = append(diags, d)
	}

	// Structural pre-pass: targets must be in range before any CFG walk.
	broken := false
	for pc, in := range f.Code {
		switch in.Op {
		case OpBr, OpBeq, OpBne, OpBlt, OpBge, OpBltu, OpBgeu:
			if int(in.Target) < 0 || int(in.Target) >= len(f.Code) {
				bad(DiagTarget, pc, "branch target %d out of range [0,%d)", in.Target, len(f.Code))
				broken = true
			}
		case OpCall:
			if int(in.Target) < 0 || int(in.Target) >= len(p.Funcs) {
				bad(DiagTarget, pc, "call target %d out of range [0,%d)", in.Target, len(p.Funcs))
				broken = true
			}
		}
	}
	if broken || len(f.Code) == 0 {
		return diags
	}

	// Reachability from the function entry.
	reach := make([]bool, len(f.Code))
	stack := []int{0}
	reach[0] = true
	terminates := false
	for len(stack) > 0 {
		pc := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		in := f.Code[pc]
		if in.Op == OpRet || in.Op == OpHalt {
			terminates = true
		}
		next, _ := succs(f, pc, in)
		for _, n := range next {
			if n >= len(f.Code) {
				bad(DiagFallOff, pc, "execution can fall off the end of the function")
				continue
			}
			if !reach[n] {
				reach[n] = true
				stack = append(stack, n)
			}
		}
	}
	for pc := range f.Code {
		if !reach[pc] {
			bad(DiagUnreachable, pc, "instruction is unreachable")
		}
	}
	if !terminates {
		bad(DiagNoReturn, -1, "no reachable ret or halt; the function cannot return to its caller")
	}

	diags = append(diags, p.verifyMemory(f, reach)...)
	return diags
}

// regState is the constant-propagation lattice for one integer register:
// either a known constant or unknown (top).
type regState struct {
	known bool
	val   int64
}

func merge(a, b regState) regState {
	if a.known && b.known && a.val == b.val {
		return a
	}
	return regState{}
}

// verifyMemory runs forward constant propagation over the reachable part of
// the function and flags loads/stores whose effective address is provably
// outside every declared region. The entry function starts from the
// machine's zeroed register file; other functions inherit their caller's
// registers and start fully unknown. A call preserves all registers except
// the return registers (the machine snapshots and restores the file), so
// only R0 is clobbered across calls.
func (p *Program) verifyMemory(f *Function, reach []bool) []Diag {
	var diags []Diag
	isEntry := p.Funcs[p.Entry] == f

	in := make([][NumRegs]regState, len(f.Code))
	seeded := make([]bool, len(f.Code))
	if isEntry {
		var zero [NumRegs]regState
		for r := range zero {
			zero[r] = regState{known: true, val: 0}
		}
		in[0] = zero
	}
	seeded[0] = true

	work := []int{0}
	onWork := make([]bool, len(f.Code))
	onWork[0] = true
	for len(work) > 0 {
		pc := work[len(work)-1]
		work = work[:len(work)-1]
		onWork[pc] = false
		instr := f.Code[pc]
		out := transfer(in[pc], instr)
		next, _ := succs(f, pc, instr)
		for _, n := range next {
			if n >= len(f.Code) {
				continue // fall-off already reported
			}
			if !seeded[n] {
				in[n] = out
				seeded[n] = true
			} else {
				changed := false
				for r := range in[n] {
					m := merge(in[n][r], out[r])
					if m != in[n][r] {
						in[n][r] = m
						changed = true
					}
				}
				if !changed {
					continue
				}
			}
			if !onWork[n] {
				work = append(work, n)
				onWork[n] = true
			}
		}
	}

	for pc, instr := range f.Code {
		if !reach[pc] {
			continue
		}
		switch instr.Op {
		case OpLoad, OpLoadS, OpStore, OpFLoad, OpFStore:
			base := in[pc][instr.Ra]
			if !base.known {
				continue
			}
			addr := uint64(base.val + instr.Imm)
			size := uint64(instr.Size)
			if !p.addressDeclared(addr, size) {
				diags = append(diags, Diag{
					Class: DiagMemory, Func: f.Name, PC: pc, Op: instr.Op,
					Message: fmt.Sprintf("memory operand 0x%x (+%d bytes) outside declared segments, reserved regions, heap and stack", addr, size),
				})
			}
		}
	}
	return diags
}

// addressDeclared reports whether [addr, addr+size) lies inside a declared
// segment, a reserved region, or the open heap/stack spaces above HeapBase.
func (p *Program) addressDeclared(addr, size uint64) bool {
	if addr >= HeapBase {
		return true // heap and stack scratch are open-ended
	}
	end := addr + size
	for _, s := range p.Segments {
		if addr >= s.Addr && end <= s.Addr+uint64(len(s.Data)) {
			return true
		}
	}
	for _, r := range p.Reserved {
		if addr >= r.Addr && end <= r.Addr+r.Size {
			return true
		}
	}
	return false
}

// transfer applies one instruction to the register lattice.
func transfer(in [NumRegs]regState, instr Instr) [NumRegs]regState {
	out := in
	setUnknown := func(r Reg) { out[r] = regState{} }
	setConst := func(r Reg, v int64) { out[r] = regState{known: true, val: v} }

	switch instr.Op {
	case OpMovi:
		setConst(instr.Rd, instr.Imm)
	case OpMov:
		out[instr.Rd] = in[instr.Ra]
	case OpAddi:
		if a := in[instr.Ra]; a.known {
			setConst(instr.Rd, a.val+instr.Imm)
		} else {
			setUnknown(instr.Rd)
		}
	case OpMuli:
		if a := in[instr.Ra]; a.known {
			setConst(instr.Rd, a.val*instr.Imm)
		} else {
			setUnknown(instr.Rd)
		}
	case OpAdd, OpSub, OpMul:
		a, b := in[instr.Ra], in[instr.Rb]
		if a.known && b.known {
			switch instr.Op {
			case OpAdd:
				setConst(instr.Rd, a.val+b.val)
			case OpSub:
				setConst(instr.Rd, a.val-b.val)
			case OpMul:
				setConst(instr.Rd, a.val*b.val)
			}
		} else {
			setUnknown(instr.Rd)
		}
	case OpShli:
		if a := in[instr.Ra]; a.known && instr.Imm >= 0 && instr.Imm < 64 {
			setConst(instr.Rd, a.val<<uint(instr.Imm))
		} else {
			setUnknown(instr.Rd)
		}
	case OpCall:
		// The machine restores the caller's register file after the call;
		// only the integer return register escapes.
		setUnknown(R0)
	case OpSys:
		setUnknown(R0)
	case OpDiv, OpRem, OpAnd, OpOr, OpXor, OpShl, OpShr, OpSar,
		OpAndi, OpOri, OpXori, OpShri,
		OpSlt, OpSltu, OpSeq, OpFtoI, OpFCmp,
		OpLoad, OpLoadS, OpAlloc:
		setUnknown(instr.Rd)
	}
	// FP ops, stores, branches, nop: no integer register written.
	return out
}

package vm

import "testing"

func TestOpClassQueries(t *testing.T) {
	if !ClassFPMul.IsFP() || ClassFPMul.IsInt() {
		t.Error("ClassFPMul misclassified")
	}
	if !ClassIntALU.IsInt() || ClassIntALU.IsFP() {
		t.Error("ClassIntALU misclassified")
	}
	if ClassConv.IsFP() || ClassConv.IsInt() {
		t.Error("ClassConv should be neither")
	}
	if ClassFPAdd.String() != "fpadd" || OpClass(200).String() == "" {
		t.Error("OpClass.String broken")
	}
}

func TestInstrClass(t *testing.T) {
	if (Instr{Op: OpFMul}).Class() != ClassFPMul {
		t.Error("fmul class")
	}
	if (Instr{Op: OpLoad}).Class() != ClassNone {
		t.Error("load should have no arithmetic class")
	}
	if !(Instr{Op: OpBeq}).IsBranch() || (Instr{Op: OpBr}).IsBranch() {
		t.Error("IsBranch covers conditional branches only")
	}
}

func TestOpAndSysNames(t *testing.T) {
	if OpAdd.String() != "add" || Op(250).String() == "" {
		t.Error("Op.String broken")
	}
	if SysRead.Name() != "read" || Sys(99).Name() == "" {
		t.Error("Sys.Name broken")
	}
}

func TestMemoryFootprint(t *testing.T) {
	m := NewMemory()
	m.Store(0, 8, 1)
	m.Store(1<<20, 8, 1)
	if m.PagesAllocated() != 2 {
		t.Errorf("pages = %d, want 2", m.PagesAllocated())
	}
	if m.FootprintBytes() != 2*64*1024 {
		t.Errorf("footprint = %d", m.FootprintBytes())
	}
}

package vm

import (
	"errors"
	"strings"
	"testing"
)

// FuzzAssemble checks the assembler never panics, that anything it accepts
// validates, verifies and disassembles cleanly, and that verifier
// rejections surface as the typed *VerifyError rather than a panic.
func FuzzAssemble(f *testing.F) {
	seeds := []string{
		"func main {\n halt\n}",
		".entry start\nfunc start {\n ret\n}",
		".data d \"hi\"\n.reserve r 64\nfunc main {\n movi r1, d\n load1 r2, r1, 0\n halt\n}",
		"func main {\nl: addi r1, r1, 1\n blt r1, r2, l\n halt\n}",
		"func main {\n fmovi f1, 1.5\n fsqrt f2, f1\n halt\n}",
		"func main {\n sys read\n sys write\n halt\n}",
		"; comment only",
		"func main {\n movi r1, 'x'\n store1 r1, 0, r1\n halt\n}",
		".data x 01 02\nfunc main { halt }",
		"func a {\n call b\n ret\n}\nfunc b {\n ret\n}\n.entry a",
		// Verifier-rejected programs: each must fail Build with a typed
		// *VerifyError, never a panic or an interpreter fault.
		"func main {\n movi r1, 1\n}",                           // falls off the end
		"func main {\n halt\n movi r1, 9\n}",                    // unreachable tail
		"func main {\nl: br l\n}",                               // no reachable ret/halt
		"func main {\n movi r1, 16\n load8 r2, r1, 0\n halt\n}", // wild constant address
		"func main {\n store8 r5, 0, r6\n halt\n}",              // zeroed entry register as base
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		p, err := Assemble(src)
		if err != nil {
			var ve *VerifyError
			if errors.As(err, &ve) && len(ve.Diags) == 0 {
				t.Fatalf("verify error with no diagnostics\nsource:\n%s", src)
			}
			if strings.Contains(err.Error(), "vm: verify:") && !errors.As(err, &ve) {
				t.Fatalf("verify rejection is %T, want *VerifyError: %v\nsource:\n%s", err, err, src)
			}
			return // rejected input is fine; panics are not
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("accepted program fails validation: %v\nsource:\n%s", err, src)
		}
		if err := p.Verify(); err != nil {
			t.Fatalf("accepted program fails verification: %v\nsource:\n%s", err, src)
		}
		var sb strings.Builder
		if err := p.WriteListing(&sb); err != nil {
			t.Fatalf("listing failed: %v", err)
		}
	})
}

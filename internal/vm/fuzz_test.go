package vm

import (
	"strings"
	"testing"
)

// FuzzAssemble checks the assembler never panics and that anything it
// accepts validates and disassembles cleanly.
func FuzzAssemble(f *testing.F) {
	seeds := []string{
		"func main {\n halt\n}",
		".entry start\nfunc start {\n ret\n}",
		".data d \"hi\"\n.reserve r 64\nfunc main {\n movi r1, d\n load1 r2, r1, 0\n halt\n}",
		"func main {\nl: addi r1, r1, 1\n blt r1, r2, l\n halt\n}",
		"func main {\n fmovi f1, 1.5\n fsqrt f2, f1\n halt\n}",
		"func main {\n sys read\n sys write\n halt\n}",
		"; comment only",
		"func main {\n movi r1, 'x'\n store1 r1, 0, r1\n halt\n}",
		".data x 01 02\nfunc main { halt }",
		"func a {\n call b\n ret\n}\nfunc b {\n ret\n}\n.entry a",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		p, err := Assemble(src)
		if err != nil {
			return // rejected input is fine; panics are not
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("accepted program fails validation: %v\nsource:\n%s", err, src)
		}
		var sb strings.Builder
		if err := p.WriteListing(&sb); err != nil {
			t.Fatalf("listing failed: %v", err)
		}
	})
}

package vm

import (
	"strings"
	"testing"
)

func TestDisassembleRoundTrip(t *testing.T) {
	// Assemble a program exercising most opcodes, disassemble it,
	// re-assemble the listing, and check the machines agree.
	src := `
.data tbl 01 02 03 04 05 06 07 08
.reserve buf 64
func main {
    movi  r1, tbl
    load8 r2, r1, 0
    movi  r3, buf
    store8 r3, 0, r2
    loads1 r4, r1, 1
    fmovi f1, 2.5
    fmovi f2, 4.0
    fmul  f3, f1, f2
    fstore r3, 8, f3
    fload  f4, r3, 8
    ftoi  r5, f4
    movi  r6, 0
    movi  r7, 3
loop:
    addi  r6, r6, 1
    blt   r6, r7, loop
    call  helper
    sys   rand
    halt
}
func helper {
    alloc r8, r7
    itof  f5, r7
    fcmp  r9, f5, f1
    ret
}
`
	p1, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := p1.WriteListing(&sb); err != nil {
		t.Fatal(err)
	}
	listing := sb.String()
	// Listings are reassemblable except for the data directive comments;
	// regenerate data directives from the original (the listing keeps
	// segments as comments to avoid duplicating contents).
	reSrc := ".data tbl 01 02 03 04 05 06 07 08\n.reserve buf 64\n"
	for _, line := range strings.Split(listing, "\n") {
		trimmed := strings.TrimSpace(line)
		if strings.HasPrefix(trimmed, ".data") || strings.HasPrefix(trimmed, ";") {
			continue
		}
		reSrc += line + "\n"
	}
	p2, err := Assemble(reSrc)
	if err != nil {
		t.Fatalf("reassembling listing: %v\n%s", err, reSrc)
	}

	run := func(p *Program) *Machine {
		m := NewMachine()
		if _, err := m.Run(p, nil); err != nil {
			t.Fatal(err)
		}
		return m
	}
	m1, m2 := run(p1), run(p2)
	if m1.Regs != m2.Regs {
		t.Errorf("register files diverge after round trip:\n%v\n%v", m1.Regs, m2.Regs)
	}
	if m1.FRegs != m2.FRegs {
		t.Errorf("fp register files diverge after round trip")
	}
	if m1.InstrCount() != m2.InstrCount() {
		t.Errorf("instruction counts diverge: %d vs %d", m1.InstrCount(), m2.InstrCount())
	}
}

func TestDisassembleFormats(t *testing.T) {
	cases := map[string]Instr{
		"movi r1, 42":       {Op: OpMovi, Rd: R1, Imm: 42},
		"add r1, r2, r3":    {Op: OpAdd, Rd: R1, Ra: R2, Rb: R3},
		"load4 r1, r2, 16":  {Op: OpLoad, Rd: R1, Ra: R2, Imm: 16, Size: 4},
		"store8 r2, -8, r3": {Op: OpStore, Ra: R2, Rb: R3, Imm: -8, Size: 8},
		"fadd f1, f2, f3":   {Op: OpFAdd, Rd: 1, Ra: 2, Rb: 3},
		"br L7":             {Op: OpBr, Target: 7},
		"sys write":         {Op: OpSys, Imm: int64(SysWrite)},
		"halt":              {Op: OpHalt},
		"ret":               {Op: OpRet},
	}
	for want, in := range cases {
		if got := in.String(); got != want {
			t.Errorf("Disassemble = %q, want %q", got, want)
		}
	}
}

func TestWriteListingLabels(t *testing.T) {
	b := NewBuilder()
	f := b.Func("main")
	top := f.Here()
	f.Addi(R1, R1, 1)
	f.Movi(R2, 10)
	f.Blt(R1, R2, top)
	f.Halt()
	var sb strings.Builder
	if err := mustBuild(b).WriteListing(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "L0:") {
		t.Errorf("listing missing branch-target label:\n%s", sb.String())
	}
}

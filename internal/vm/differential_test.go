package vm

import (
	"math"
	"math/rand"
	"testing"
)

// TestDifferentialArithmetic generates random straight-line arithmetic
// programs and checks the machine against an independent Go evaluation of
// the same instruction sequence — a differential test of the interpreter's
// arithmetic, conversion and memory semantics.
func TestDifferentialArithmetic(t *testing.T) {
	rng := rand.New(rand.NewSource(20130915)) // the paper's conference month
	for trial := 0; trial < 200; trial++ {
		prog, model := randomProgram(rng)
		m := NewMachine()
		if _, err := m.Run(prog, nil); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for r := 0; r < NumRegs; r++ {
			if m.Regs[r] != model.regs[r] {
				t.Fatalf("trial %d: r%d = %d, model %d", trial, r, m.Regs[r], model.regs[r])
			}
		}
		for f := 0; f < NumFRegs; f++ {
			got, want := m.FRegs[f], model.fregs[f]
			if got != want && !(math.IsNaN(got) && math.IsNaN(want)) {
				t.Fatalf("trial %d: f%d = %v, model %v", trial, f, got, want)
			}
		}
	}
}

type model struct {
	regs  [NumRegs]int64
	fregs [NumFRegs]float64
	mem   map[uint64]byte
}

func (mo *model) load(addr uint64, size uint8) uint64 {
	var v uint64
	for i := uint8(0); i < size; i++ {
		v |= uint64(mo.mem[addr+uint64(i)]) << (8 * i)
	}
	return v
}

func (mo *model) store(addr uint64, size uint8, v uint64) {
	for i := uint8(0); i < size; i++ {
		mo.mem[addr+uint64(i)] = byte(v >> (8 * i))
	}
}

// randomProgram emits a random straight-line program and the model's final
// state after evaluating the same sequence.
func randomProgram(rng *rand.Rand) (*Program, *model) {
	b := NewBuilder()
	base := b.Reserve("scratch", 4096)
	f := b.Func("main")
	mo := &model{mem: map[uint64]byte{}}

	reg := func() Reg { return Reg(rng.Intn(NumRegs)) }
	freg := func() FReg { return FReg(rng.Intn(NumFRegs)) }
	sizes := []uint8{1, 2, 4, 8}

	n := 30 + rng.Intn(120)
	for i := 0; i < n; i++ {
		switch rng.Intn(14) {
		case 0:
			rd, imm := reg(), rng.Int63()-rng.Int63()
			f.Movi(rd, imm)
			mo.regs[rd] = imm
		case 1:
			rd, ra, rb := reg(), reg(), reg()
			f.Add(rd, ra, rb)
			mo.regs[rd] = mo.regs[ra] + mo.regs[rb]
		case 2:
			rd, ra, rb := reg(), reg(), reg()
			f.Sub(rd, ra, rb)
			mo.regs[rd] = mo.regs[ra] - mo.regs[rb]
		case 3:
			rd, ra, rb := reg(), reg(), reg()
			f.Mul(rd, ra, rb)
			mo.regs[rd] = mo.regs[ra] * mo.regs[rb]
		case 4:
			rd, ra, rb := reg(), reg(), reg()
			f.Xor(rd, ra, rb)
			mo.regs[rd] = mo.regs[ra] ^ mo.regs[rb]
		case 5:
			rd, ra := reg(), reg()
			sh := int64(rng.Intn(64))
			f.Shli(rd, ra, sh)
			mo.regs[rd] = mo.regs[ra] << uint(sh)
		case 6:
			rd, ra := reg(), reg()
			sh := int64(rng.Intn(64))
			f.Shri(rd, ra, sh)
			mo.regs[rd] = int64(uint64(mo.regs[ra]) >> uint(sh))
		case 7:
			rd, ra, rb := reg(), reg(), reg()
			f.Sar(rd, ra, rb)
			mo.regs[rd] = mo.regs[ra] >> (uint64(mo.regs[rb]) & 63)
		case 8:
			fd := freg()
			v := (rng.Float64() - 0.5) * 1e6
			f.FMovi(fd, v)
			mo.fregs[fd] = v
		case 9:
			fd, fa, fb := freg(), freg(), freg()
			f.FMul(fd, fa, fb)
			mo.fregs[fd] = mo.fregs[fa] * mo.fregs[fb]
		case 10:
			fd, fa, fb := freg(), freg(), freg()
			f.FAdd(fd, fa, fb)
			mo.fregs[fd] = mo.fregs[fa] + mo.fregs[fb]
		case 11:
			fd, ra := freg(), reg()
			f.ItoF(fd, ra)
			mo.fregs[fd] = float64(mo.regs[ra])
		case 12:
			// Store then reload somewhere nearby.
			ra, rb := reg(), reg()
			off := int64(rng.Intn(1024))
			size := sizes[rng.Intn(4)]
			f.MoviU(ra, base)
			mo.regs[ra] = int64(base)
			f.Store(ra, off, rb, size)
			mo.store(base+uint64(off), size, uint64(mo.regs[rb]))
		case 13:
			rd, ra := reg(), reg()
			off := int64(rng.Intn(1024))
			size := sizes[rng.Intn(4)]
			f.MoviU(ra, base)
			mo.regs[ra] = int64(base)
			if rng.Intn(2) == 0 {
				f.Load(rd, ra, off, size)
				mo.regs[rd] = int64(mo.load(base+uint64(off), size))
			} else {
				f.LoadS(rd, ra, off, size)
				v := mo.load(base+uint64(off), size)
				switch size {
				case 1:
					mo.regs[rd] = int64(int8(v))
				case 2:
					mo.regs[rd] = int64(int16(v))
				case 4:
					mo.regs[rd] = int64(int32(v))
				default:
					mo.regs[rd] = int64(v)
				}
			}
		}
	}
	f.Halt()
	return mustBuild(b), mo
}

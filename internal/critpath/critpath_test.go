package critpath

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sigil/internal/core"
	"sigil/internal/trace"
	"sigil/internal/vm"
)

// handTrace builds: main(5 ops) → call A(10 ops) → main(1 op) →
// call B(20 ops, consumes A's output) → main(2 ops).
// Longest chain: main.seg1(5) → A(10) → B(20) = 35; serial = 38.
func handTrace() *trace.Trace {
	b := &trace.Buffer{}
	emit := func(e trace.Event) { _ = b.Emit(e) }
	emit(trace.Event{Kind: trace.KindDefCtx, Ctx: 0, SrcCtx: -1, Name: "main"})
	emit(trace.Event{Kind: trace.KindDefCtx, Ctx: 1, SrcCtx: 0, Name: "A"})
	emit(trace.Event{Kind: trace.KindDefCtx, Ctx: 2, SrcCtx: 0, Name: "B"})
	emit(trace.Event{Kind: trace.KindEnter, Ctx: 0, Call: 1})
	emit(trace.Event{Kind: trace.KindOps, Ctx: 0, Call: 1, Ops: 5})
	emit(trace.Event{Kind: trace.KindEnter, Ctx: 1, Call: 2})
	emit(trace.Event{Kind: trace.KindOps, Ctx: 1, Call: 2, Ops: 10})
	emit(trace.Event{Kind: trace.KindLeave, Ctx: 1, Call: 2})
	emit(trace.Event{Kind: trace.KindOps, Ctx: 0, Call: 1, Ops: 1})
	emit(trace.Event{Kind: trace.KindEnter, Ctx: 2, Call: 3})
	emit(trace.Event{Kind: trace.KindComm, Ctx: 2, Call: 3, SrcCtx: 1, SrcCall: 2, Bytes: 64})
	emit(trace.Event{Kind: trace.KindOps, Ctx: 2, Call: 3, Ops: 20})
	emit(trace.Event{Kind: trace.KindLeave, Ctx: 2, Call: 3})
	emit(trace.Event{Kind: trace.KindOps, Ctx: 0, Call: 1, Ops: 2})
	emit(trace.Event{Kind: trace.KindLeave, Ctx: 0, Call: 1})
	return trace.FromBuffer(b)
}

func TestHandBuiltChain(t *testing.T) {
	a, err := Analyze(handTrace())
	if err != nil {
		t.Fatal(err)
	}
	if a.SerialOps != 38 {
		t.Errorf("serial = %d, want 38", a.SerialOps)
	}
	if a.CriticalOps != 35 {
		t.Errorf("critical = %d, want 35", a.CriticalOps)
	}
	want := []string{"main", "A", "B"}
	if len(a.Chain) != 3 || a.Chain[0] != want[0] || a.Chain[1] != want[1] || a.Chain[2] != want[2] {
		t.Errorf("chain = %v, want %v", a.Chain, want)
	}
	if p := a.Parallelism(); math.Abs(p-38.0/35.0) > 1e-9 {
		t.Errorf("parallelism = %v", p)
	}
}

// handTraceNoComm is the same shape but without the A→B data edge: B only
// depends on main, so A and B overlap and the critical path drops.
func handTraceNoComm() *trace.Trace {
	tr := handTrace()
	var events []trace.Event
	for _, e := range tr.Events {
		if e.Kind != trace.KindComm {
			events = append(events, e)
		}
	}
	tr.Events = events
	return tr
}

func TestNonBlockingCallsOverlap(t *testing.T) {
	a, err := Analyze(handTraceNoComm())
	if err != nil {
		t.Fatal(err)
	}
	// B's only pred is main's second segment: 5+1+20 = 26.
	if a.CriticalOps != 26 {
		t.Errorf("critical = %d, want 26 (A and B overlap)", a.CriticalOps)
	}
}

func runWithEvents(t *testing.T, p *vm.Program) *trace.Trace {
	t.Helper()
	var buf trace.Buffer
	if _, err := core.Run(p, core.Options{Events: &buf}, nil); err != nil {
		t.Fatal(err)
	}
	return trace.FromBuffer(&buf)
}

// heavyLoop emits a loop with roughly n arithmetic ops into f.
func heavyLoop(f *vm.FuncBuilder, n int64) {
	f.Movi(vm.R20, 0)
	f.Movi(vm.R21, n)
	top := f.Here()
	f.Addi(vm.R20, vm.R20, 1)
	f.Blt(vm.R20, vm.R21, top)
}

func TestIndependentChildrenParallel(t *testing.T) {
	// main writes two disjoint buffers; A consumes one, B the other. With
	// non-blocking calls the two heavy children overlap: parallelism ≈ 2.
	b := vm.NewBuilder()
	buf := b.Reserve("buf", 128)
	main := b.Func("main")
	main.MoviU(vm.R1, buf)
	main.Movi(vm.R2, 1)
	main.Store(vm.R1, 0, vm.R2, 8)
	main.Store(vm.R1, 64, vm.R2, 8)
	main.Call("workA")
	main.Call("workB")
	main.Halt()
	fa := b.Func("workA")
	fa.Load(vm.R3, vm.R1, 0, 8)
	heavyLoop(fa, 5000)
	fa.Ret()
	fb := b.Func("workB")
	fb.Load(vm.R3, vm.R1, 64, 8)
	heavyLoop(fb, 5000)
	fb.Ret()

	a, err := Analyze(runWithEvents(t, mustBuild(b)))
	if err != nil {
		t.Fatal(err)
	}
	if p := a.Parallelism(); p < 1.7 || p > 2.3 {
		t.Errorf("parallelism = %v, want ≈ 2", p)
	}
}

func TestDependentChainSerial(t *testing.T) {
	// A produces what B consumes: no overlap, parallelism ≈ 1.
	b := vm.NewBuilder()
	buf := b.Reserve("buf", 64)
	main := b.Func("main")
	main.MoviU(vm.R1, buf)
	main.Call("stage1")
	main.Call("stage2")
	main.Halt()
	s1 := b.Func("stage1")
	heavyLoop(s1, 5000)
	s1.Store(vm.R1, 0, vm.R20, 8)
	s1.Ret()
	s2 := b.Func("stage2")
	s2.Load(vm.R3, vm.R1, 0, 8)
	heavyLoop(s2, 5000)
	s2.Ret()

	a, err := Analyze(runWithEvents(t, mustBuild(b)))
	if err != nil {
		t.Fatal(err)
	}
	if p := a.Parallelism(); p > 1.2 {
		t.Errorf("parallelism = %v, want ≈ 1 for a dependent chain", p)
	}
	// The chain should pass through both stages.
	has := func(name string) bool {
		for _, c := range a.Chain {
			if c == name {
				return true
			}
		}
		return false
	}
	if !has("stage1") || !has("stage2") {
		t.Errorf("chain = %v, want both stages", a.Chain)
	}
}

func TestManyShortPathsHighParallelism(t *testing.T) {
	// Streamcluster-like: many independent short calls each fed by main.
	b := vm.NewBuilder()
	buf := b.Reserve("buf", 8*64)
	main := b.Func("main")
	main.MoviU(vm.R1, buf)
	main.Movi(vm.R2, 1)
	for i := int64(0); i < 8; i++ {
		main.Store(vm.R1, i*64, vm.R2, 8)
	}
	for i := int64(0); i < 8; i++ {
		main.Movi(vm.R5, i*64)
		main.Call("shortwork")
	}
	main.Halt()
	sw := b.Func("shortwork")
	sw.Add(vm.R6, vm.R1, vm.R5)
	sw.Load(vm.R3, vm.R6, 0, 8)
	heavyLoop(sw, 500)
	sw.Ret()

	a, err := Analyze(runWithEvents(t, mustBuild(b)))
	if err != nil {
		t.Fatal(err)
	}
	if p := a.Parallelism(); p < 4 {
		t.Errorf("parallelism = %v, want >= 4 for 8 independent calls", p)
	}
}

func TestSequentialSegmentsWithinCallOrdered(t *testing.T) {
	// Re-entry after a child returns must chain to the previous segment
	// of the same call (the paper's "conservatively enforce order").
	b := vm.NewBuilder()
	main := b.Func("main")
	heavyLoop(main, 100)
	main.Call("child")
	heavyLoop(main, 100)
	main.Halt()
	c := b.Func("child")
	c.Movi(vm.R1, 1)
	c.Ret()
	a, err := Analyze(runWithEvents(t, mustBuild(b)))
	if err != nil {
		t.Fatal(err)
	}
	// Each heavyLoop segment is ~102 ops (movi×2 + addi per iteration;
	// branches are not arithmetic ops). The critical path must chain
	// both main segments: ~204, not just one (~102).
	if a.CriticalOps < 200 {
		t.Errorf("critical = %d, want both main segments chained (~204)", a.CriticalOps)
	}
}

func TestErrorOnUnknownCall(t *testing.T) {
	b := &trace.Buffer{}
	_ = b.Emit(trace.Event{Kind: trace.KindOps, Ctx: 0, Call: 99, Ops: 5})
	if _, err := Analyze(trace.FromBuffer(b)); err == nil {
		t.Error("ops for unknown call accepted")
	}
	b2 := &trace.Buffer{}
	_ = b2.Emit(trace.Event{Kind: trace.KindComm, Ctx: 0, Call: 99, Bytes: 1})
	if _, err := Analyze(trace.FromBuffer(b2)); err == nil {
		t.Error("comm into unknown call accepted")
	}
}

func TestErrorOnUnbalancedLeave(t *testing.T) {
	b := &trace.Buffer{}
	_ = b.Emit(trace.Event{Kind: trace.KindLeave, Ctx: 0, Call: 1})
	if _, err := Analyze(trace.FromBuffer(b)); err == nil {
		t.Error("leave with empty stack accepted")
	}
}

func TestEmptyTrace(t *testing.T) {
	a, err := Analyze(&trace.Trace{Contexts: map[int32]trace.CtxInfo{}})
	if err != nil {
		t.Fatal(err)
	}
	if a.SerialOps != 0 || a.CriticalOps != 0 || a.Parallelism() != 1 {
		t.Errorf("empty trace analysis: %+v", a)
	}
}

func TestChainCollapsesConsecutiveDuplicates(t *testing.T) {
	a, err := Analyze(handTrace())
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(a.ChainCtxs); i++ {
		if a.ChainCtxs[i] == a.ChainCtxs[i-1] {
			t.Errorf("chain has consecutive duplicate at %d: %v", i, a.ChainCtxs)
		}
	}
}

func TestAnalyzeReaderMatchesInMemory(t *testing.T) {
	// Serialize a real workload trace and check the streaming analysis
	// agrees with the in-memory one exactly.
	b := vm.NewBuilder()
	buf := b.Reserve("buf", 64)
	main := b.Func("main")
	main.MoviU(vm.R1, buf)
	main.Call("stage1")
	main.Call("stage2")
	main.Halt()
	s1 := b.Func("stage1")
	heavyLoop(s1, 2000)
	s1.Store(vm.R1, 0, vm.R20, 8)
	s1.Ret()
	s2 := b.Func("stage2")
	s2.Load(vm.R3, vm.R1, 0, 8)
	heavyLoop(s2, 3000)
	s2.Ret()

	var sink bytes.Buffer
	w := trace.NewWriter(&sink)
	prog := mustBuild(b)
	if _, err := core.Run(prog, core.Options{Events: w}, nil); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	encoded := sink.Bytes()

	streamed, err := AnalyzeReader(bytes.NewReader(encoded))
	if err != nil {
		t.Fatal(err)
	}
	tr, err := trace.ReadAll(bytes.NewReader(encoded))
	if err != nil {
		t.Fatal(err)
	}
	inMem, err := Analyze(tr)
	if err != nil {
		t.Fatal(err)
	}
	if streamed.CriticalOps != inMem.CriticalOps || streamed.SerialOps != inMem.SerialOps ||
		streamed.Segments != inMem.Segments {
		t.Errorf("streaming %+v != in-memory %+v", streamed, inMem)
	}
	if strings.Join(streamed.Chain, ",") != strings.Join(inMem.Chain, ",") {
		t.Errorf("chains differ: %v vs %v", streamed.Chain, inMem.Chain)
	}
}

func TestAnalyzeReaderRejectsGarbage(t *testing.T) {
	if _, err := AnalyzeReader(bytes.NewReader([]byte("junkjunkjunk"))); err == nil {
		t.Error("garbage accepted")
	}
}

// TestAnalyzeFileMatchesReader decodes the same event file through
// AnalyzeFile at several pool widths and checks every one agrees with the
// streaming analysis.
func TestAnalyzeFileMatchesReader(t *testing.T) {
	b := vm.NewBuilder()
	buf := b.Reserve("buf", 64)
	main := b.Func("main")
	main.MoviU(vm.R1, buf)
	main.Call("stage1")
	main.Call("stage2")
	main.Halt()
	s1 := b.Func("stage1")
	heavyLoop(s1, 2000)
	s1.Store(vm.R1, 0, vm.R20, 8)
	s1.Ret()
	s2 := b.Func("stage2")
	s2.Load(vm.R3, vm.R1, 0, 8)
	heavyLoop(s2, 3000)
	s2.Ret()

	path := filepath.Join(t.TempDir(), "out.evt")
	sink, err := trace.CreateFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := core.Run(mustBuild(b), core.Options{Events: sink}, nil); err != nil {
		t.Fatal(err)
	}
	if err := sink.Commit(); err != nil {
		t.Fatal(err)
	}

	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	want, err := AnalyzeReader(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 1, 4} {
		got, err := AnalyzeFile(path, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if got.CriticalOps != want.CriticalOps || got.SerialOps != want.SerialOps ||
			got.Segments != want.Segments {
			t.Errorf("workers=%d: %+v != %+v", workers, got, want)
		}
		if strings.Join(got.Chain, ",") != strings.Join(want.Chain, ",") {
			t.Errorf("workers=%d: chains differ: %v vs %v", workers, got.Chain, want.Chain)
		}
	}
	if _, err := AnalyzeFile(filepath.Join(t.TempDir(), "missing.evt"), 2); err == nil {
		t.Error("missing file accepted")
	}
}

package critpath

import (
	"math"
	"testing"

	"sigil/internal/trace"
)

func TestAnalyzeWithCommMatchesBaselineAtZeroCost(t *testing.T) {
	tr := handTrace()
	base, err := Analyze(tr)
	if err != nil {
		t.Fatal(err)
	}
	comm, err := AnalyzeWithComm(tr, CommConfig{OpsPerByte: 0})
	if err != nil {
		t.Fatal(err)
	}
	if comm.CriticalOps != base.CriticalOps || comm.SerialOps != base.SerialOps {
		t.Errorf("zero-cost comm analysis differs: %d/%d vs %d/%d",
			comm.CriticalOps, comm.SerialOps, base.CriticalOps, base.SerialOps)
	}
	if len(comm.Chain) != len(base.Chain) {
		t.Errorf("chains differ: %v vs %v", comm.Chain, base.Chain)
	}
}

func TestAnalyzeWithCommChargesEdges(t *testing.T) {
	tr := handTrace() // A→B data edge carries 64 bytes; base critical = 35.
	a, err := AnalyzeWithComm(tr, CommConfig{OpsPerByte: 1})
	if err != nil {
		t.Fatal(err)
	}
	// The A→B edge adds 64 ops of transfer: 35 + 64 = 99.
	if a.CriticalOps != 99 {
		t.Errorf("comm-charged critical = %d, want 99", a.CriticalOps)
	}
	// With expensive communication the path may change shape; at this
	// price it still runs through A and B.
	if len(a.Chain) == 0 || a.Chain[len(a.Chain)-1] != "B" {
		t.Errorf("chain = %v", a.Chain)
	}
}

func TestAnalyzeWithCommCanRerouteCriticalPath(t *testing.T) {
	// Two consumers of main's data: X receives few bytes but computes a
	// lot; Y receives many bytes and computes little. With free
	// communication X dominates; with expensive communication Y does.
	b := &trace.Buffer{}
	emit := func(e trace.Event) { _ = b.Emit(e) }
	emit(trace.Event{Kind: trace.KindDefCtx, Ctx: 0, SrcCtx: -1, Name: "main"})
	emit(trace.Event{Kind: trace.KindDefCtx, Ctx: 1, SrcCtx: 0, Name: "X"})
	emit(trace.Event{Kind: trace.KindDefCtx, Ctx: 2, SrcCtx: 0, Name: "Y"})
	emit(trace.Event{Kind: trace.KindEnter, Ctx: 0, Call: 1})
	emit(trace.Event{Kind: trace.KindOps, Ctx: 0, Call: 1, Ops: 10})
	emit(trace.Event{Kind: trace.KindEnter, Ctx: 1, Call: 2})
	emit(trace.Event{Kind: trace.KindComm, Ctx: 1, Call: 2, SrcCtx: 0, SrcCall: 1, Bytes: 1})
	emit(trace.Event{Kind: trace.KindOps, Ctx: 1, Call: 2, Ops: 100})
	emit(trace.Event{Kind: trace.KindLeave, Ctx: 1, Call: 2})
	emit(trace.Event{Kind: trace.KindEnter, Ctx: 2, Call: 3})
	emit(trace.Event{Kind: trace.KindComm, Ctx: 2, Call: 3, SrcCtx: 0, SrcCall: 1, Bytes: 1000})
	emit(trace.Event{Kind: trace.KindOps, Ctx: 2, Call: 3, Ops: 5})
	emit(trace.Event{Kind: trace.KindLeave, Ctx: 2, Call: 3})
	emit(trace.Event{Kind: trace.KindLeave, Ctx: 0, Call: 1})
	tr := trace.FromBuffer(b)

	cheap, err := AnalyzeWithComm(tr, CommConfig{OpsPerByte: 0})
	if err != nil {
		t.Fatal(err)
	}
	if cheap.Chain[len(cheap.Chain)-1] != "X" {
		t.Errorf("cheap chain ends at %v, want X", cheap.Chain)
	}
	dear, err := AnalyzeWithComm(tr, CommConfig{OpsPerByte: 1})
	if err != nil {
		t.Fatal(err)
	}
	if dear.Chain[len(dear.Chain)-1] != "Y" {
		t.Errorf("expensive chain ends at %v, want Y", dear.Chain)
	}
	if dear.CriticalOps != 10+1000+5 {
		t.Errorf("expensive critical = %d, want 1015", dear.CriticalOps)
	}
}

func TestAnalyzeWithCommRejectsNegativeCost(t *testing.T) {
	if _, err := AnalyzeWithComm(handTrace(), CommConfig{OpsPerByte: -1}); err == nil {
		t.Error("negative cost accepted")
	}
}

func TestScheduleOneSlotIsSerial(t *testing.T) {
	tr := handTrace()
	r, err := Schedule(tr, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.Makespan != r.SerialOps {
		t.Errorf("1-slot makespan %d != serial %d", r.Makespan, r.SerialOps)
	}
	if s := r.Speedup(); math.Abs(s-1) > 1e-9 {
		t.Errorf("1-slot speedup %v", s)
	}
}

func TestScheduleRespectsDependencies(t *testing.T) {
	// The hand trace's chain main(5)→A(10)→B(20) bounds any schedule:
	// makespan >= critical path (35) regardless of slot count.
	tr := handTrace()
	base, _ := Analyze(tr)
	for _, slots := range []int{1, 2, 4, 16} {
		r, err := Schedule(tr, slots)
		if err != nil {
			t.Fatal(err)
		}
		if r.Makespan < base.CriticalOps {
			t.Errorf("%d slots: makespan %d below critical path %d",
				slots, r.Makespan, base.CriticalOps)
		}
		if r.Makespan > r.SerialOps {
			t.Errorf("%d slots: makespan %d above serial %d", slots, r.Makespan, r.SerialOps)
		}
		var load uint64
		for _, l := range r.SlotLoad {
			load += l
		}
		if load != r.SerialOps {
			t.Errorf("%d slots: loads sum to %d, want %d", slots, load, r.SerialOps)
		}
		if u := r.Utilization(); u <= 0 || u > 1 {
			t.Errorf("%d slots: utilization %v", slots, u)
		}
	}
}

func TestScheduleSpeedupMonotoneForParallelWork(t *testing.T) {
	// Independent children (no data deps): more slots must not hurt.
	tr := handTraceNoComm()
	prev := 0.0
	for _, slots := range []int{1, 2, 4} {
		r, err := Schedule(tr, slots)
		if err != nil {
			t.Fatal(err)
		}
		if s := r.Speedup(); s+1e-9 < prev {
			t.Errorf("speedup regressed at %d slots: %v < %v", slots, s, prev)
		} else {
			prev = s
		}
	}
}

func TestScheduleAffinityReducesCrossSlotBytes(t *testing.T) {
	// The scheduler prefers the heavy producer's slot; the hand trace's
	// single 64-byte edge should land producer and consumer together
	// when dependencies allow it.
	r, err := Schedule(handTrace(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if r.CrossSlotBytes != 0 {
		t.Errorf("cross-slot bytes = %d, want colocated A→B", r.CrossSlotBytes)
	}
}

func TestScheduleErrors(t *testing.T) {
	if _, err := Schedule(handTrace(), 0); err == nil {
		t.Error("zero slots accepted")
	}
	b := &trace.Buffer{}
	_ = b.Emit(trace.Event{Kind: trace.KindOps, Ctx: 0, Call: 9, Ops: 1})
	if _, err := Schedule(trace.FromBuffer(b), 2); err == nil {
		t.Error("malformed trace accepted")
	}
	if _, err := AnalyzeWithComm(trace.FromBuffer(b), CommConfig{}); err == nil {
		t.Error("malformed trace accepted by AnalyzeWithComm")
	}
}

func TestGraphMatchesIncrementalAnalysis(t *testing.T) {
	// The explicit DAG (schedule.go) and the incremental longest path
	// (critpath.go) must agree on every workload-shaped trace we have.
	for _, tr := range []*trace.Trace{handTrace(), handTraceNoComm()} {
		a, err := Analyze(tr)
		if err != nil {
			t.Fatal(err)
		}
		c, err := AnalyzeWithComm(tr, CommConfig{})
		if err != nil {
			t.Fatal(err)
		}
		if a.CriticalOps != c.CriticalOps || a.SerialOps != c.SerialOps || a.Segments != c.Segments {
			t.Errorf("DAG/incremental disagree: %+v vs %+v", c, a)
		}
	}
}

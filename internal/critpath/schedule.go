package critpath

import (
	"fmt"

	"sigil/internal/trace"
)

// This file implements the two follow-ups §IV-C sketches but defers:
//
//   - a critical path that charges communication edges (the paper cites
//     full-system critical-path analysis [16] for this), via
//     AnalyzeWithComm's cost for each transferred byte; and
//   - mapping dependency chains onto a fixed number of scheduling slots
//     ("a software developer may have a fixed number of scheduling slots
//     based on the number of available cores"), via Schedule: a list
//     scheduler that respects the chain dependencies and reports the
//     resulting makespan and speedup.

// CommConfig prices data-transfer edges for communication-aware analysis.
type CommConfig struct {
	// OpsPerByte converts transferred bytes into chain length: a data
	// edge of B bytes lengthens its consumer's path by B·OpsPerByte
	// (0 reproduces the paper's pure-computation analysis).
	OpsPerByte float64
}

// AnalyzeWithComm is Analyze with communication edges charged: the critical
// path then reflects not only dependent computation but the cost of moving
// data between the chains' endpoints.
func AnalyzeWithComm(tr *trace.Trace, cfg CommConfig) (*Analysis, error) {
	if cfg.OpsPerByte < 0 {
		return nil, fmt.Errorf("critpath: negative OpsPerByte")
	}
	g, err := buildGraph(tr)
	if err != nil {
		return nil, err
	}
	a := &Analysis{SerialOps: g.serialOps, Segments: uint64(len(g.nodes))}
	// Longest path over the DAG with edge weights: nodes are already in
	// creation (topological) order.
	incl := make([]float64, len(g.nodes))
	pred := make([]int, len(g.nodes))
	best := -1
	for i, n := range g.nodes {
		pred[i] = -1
		for _, e := range n.preds {
			w := incl[e.src] + float64(e.bytes)*cfg.OpsPerByte
			if w > incl[i] {
				incl[i] = w
				pred[i] = e.src
			}
		}
		incl[i] += float64(n.self)
		if best < 0 || incl[i] > incl[best] {
			best = i
		}
	}
	if best >= 0 {
		a.CriticalOps = uint64(incl[best])
		var ctxs []int32
		for i := best; i >= 0; i = pred[i] {
			ctxs = append(ctxs, g.nodes[i].ctx)
		}
		for i, j := 0, len(ctxs)-1; i < j; i, j = i+1, j-1 {
			ctxs[i], ctxs[j] = ctxs[j], ctxs[i]
		}
		for _, c := range ctxs {
			if len(a.ChainCtxs) == 0 || a.ChainCtxs[len(a.ChainCtxs)-1] != c {
				a.ChainCtxs = append(a.ChainCtxs, c)
			}
		}
		for _, c := range a.ChainCtxs {
			a.Chain = append(a.Chain, tr.CtxName(c))
		}
	}
	return a, nil
}

// --- explicit DAG construction (shared by scheduling) ---

type gEdge struct {
	src   int
	bytes uint64 // 0 for sequential and call edges
}

type gNode struct {
	ctx   int32
	call  uint64
	self  uint64
	preds []gEdge
}

type graph struct {
	nodes     []gNode
	serialOps uint64
}

// buildGraph replays the event stream into an explicit segment DAG with the
// same semantics as Analyze (sequential, call and data edges; non-blocking
// returns).
func buildGraph(tr *trace.Trace) (*graph, error) {
	g := &graph{}
	type callInfo struct {
		ctx       int32
		last      int // latest closed node, -1 if none
		enterPred int
		open      int // in-construction node, -1 if none
	}
	calls := make(map[uint64]*callInfo)
	var stack []*callInfo

	ensureOpen := func(ci *callInfo, call uint64) int {
		if ci.open >= 0 {
			return ci.open
		}
		idx := len(g.nodes)
		n := gNode{ctx: ci.ctx, call: call}
		switch {
		case ci.last >= 0:
			n.preds = append(n.preds, gEdge{src: ci.last})
		case ci.enterPred >= 0:
			n.preds = append(n.preds, gEdge{src: ci.enterPred})
		}
		g.nodes = append(g.nodes, n)
		ci.open = idx
		return idx
	}

	for i := range tr.Events {
		e := &tr.Events[i]
		switch e.Kind {
		case trace.KindEnter:
			ci := &callInfo{ctx: e.Ctx, last: -1, enterPred: -1, open: -1}
			if len(stack) > 0 {
				parent := stack[len(stack)-1]
				if parent.last >= 0 {
					ci.enterPred = parent.last
				} else if parent.enterPred >= 0 {
					ci.enterPred = parent.enterPred
				}
			}
			calls[e.Call] = ci
			stack = append(stack, ci)
		case trace.KindLeave:
			if len(stack) == 0 {
				return nil, fmt.Errorf("critpath: unbalanced leave of call %d", e.Call)
			}
			stack = stack[:len(stack)-1]
		case trace.KindComm:
			ci := calls[e.Call]
			if ci == nil {
				return nil, fmt.Errorf("critpath: comm into unknown call %d", e.Call)
			}
			idx := ensureOpen(ci, e.Call)
			if src := calls[e.SrcCall]; src != nil && e.SrcCtx >= 0 {
				from := src.last
				if from < 0 {
					from = src.enterPred
				}
				if from >= 0 {
					g.nodes[idx].preds = append(g.nodes[idx].preds,
						gEdge{src: from, bytes: e.Bytes})
				}
			}
		case trace.KindOps:
			ci := calls[e.Call]
			if ci == nil {
				return nil, fmt.Errorf("critpath: ops for unknown call %d", e.Call)
			}
			idx := ensureOpen(ci, e.Call)
			g.nodes[idx].self = e.Ops
			g.serialOps += e.Ops
			ci.last = idx
			ci.open = -1
		}
	}
	return g, nil
}

// ScheduleResult reports a list-scheduling run: the makespan achieved on a
// fixed number of slots and the per-slot load.
type ScheduleResult struct {
	Slots     int
	Makespan  uint64
	SerialOps uint64
	// SlotLoad is the computation placed on each slot.
	SlotLoad []uint64
	// CrossSlotBytes counts data-edge bytes whose producer and consumer
	// landed on different slots — the communication the paper's
	// developer wants to minimize when mapping chains onto cores.
	CrossSlotBytes uint64
}

// Speedup is the serial length over the achieved makespan.
func (r *ScheduleResult) Speedup() float64 {
	if r.Makespan == 0 {
		return 1
	}
	return float64(r.SerialOps) / float64(r.Makespan)
}

// Utilization is mean slot load over the makespan.
func (r *ScheduleResult) Utilization() float64 {
	if r.Makespan == 0 || r.Slots == 0 {
		return 0
	}
	var sum uint64
	for _, l := range r.SlotLoad {
		sum += l
	}
	return float64(sum) / (float64(r.Makespan) * float64(r.Slots))
}

// Schedule maps the trace's dependency chains onto `slots` scheduling slots
// with a greedy earliest-finish list scheduler that prefers the slot where
// the segment's heaviest producer ran (minimizing cross-slot traffic), the
// §IV-C mapping exercise. Returns an error for slots < 1 or a malformed
// trace.
func Schedule(tr *trace.Trace, slots int) (*ScheduleResult, error) {
	if slots < 1 {
		return nil, fmt.Errorf("critpath: need at least one slot")
	}
	g, err := buildGraph(tr)
	if err != nil {
		return nil, err
	}
	res := &ScheduleResult{
		Slots:     slots,
		SerialOps: g.serialOps,
		SlotLoad:  make([]uint64, slots),
	}
	free := make([]uint64, slots) // each slot's next free time
	finish := make([]uint64, len(g.nodes))
	placed := make([]int, len(g.nodes))

	// Nodes are created in topological order (a node's preds always
	// precede it), so scheduling in creation order never violates a
	// dependency.
	for idx := range g.nodes {
		n := &g.nodes[idx]
		var readyAt uint64
		bestSrc, bestBytes := -1, uint64(0)
		for _, e := range n.preds {
			if finish[e.src] > readyAt {
				readyAt = finish[e.src]
			}
			if e.bytes > bestBytes {
				bestBytes = e.bytes
				bestSrc = e.src
			}
		}
		// Candidate slots: the heaviest producer's slot first, then the
		// earliest-free slot.
		pick := 0
		if bestSrc >= 0 {
			pick = placed[bestSrc]
		}
		bestSlot, bestStart := pick, maxU64(free[pick], readyAt)
		for s := 0; s < slots; s++ {
			if start := maxU64(free[s], readyAt); start < bestStart {
				bestSlot, bestStart = s, start
			}
		}
		placed[idx] = bestSlot
		finish[idx] = bestStart + n.self
		free[bestSlot] = finish[idx]
		res.SlotLoad[bestSlot] += n.self
		if finish[idx] > res.Makespan {
			res.Makespan = finish[idx]
		}
		for _, e := range n.preds {
			if e.bytes > 0 && placed[e.src] != bestSlot {
				res.CrossSlotBytes += e.bytes
			}
		}
	}
	return res, nil
}

func maxU64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

// Package critpath post-processes Sigil event files into dependency chains
// and extracts the critical path, following §II-C2 of the paper: each node
// is one computation segment of a function call; edges are the sequential
// order within a call, the call edge from the caller's preceding segment,
// and the data-transfer edges between calls. Calls are modelled as
// non-blocking — a return adds no callee→caller edge, only data does — so
// the longest chain bounds the workload's function-level parallelism.
package critpath

import (
	"errors"
	"fmt"
	"io"
	"os"
	"runtime"

	"sigil/internal/trace"
)

// node is one computation segment (a box of the paper's Figure 3). The
// inclusive cost is the self-cost plus the maximum inclusive cost over
// predecessors — the longest dependent chain from the program's start.
type node struct {
	ctx  int32
	call uint64
	self uint64
	incl uint64
	pred *node // predecessor on the longest incoming chain
}

// callState tracks the chain bookkeeping for one function call.
type callState struct {
	ctx     int32
	callNum uint64
	// last is the most recent closed segment node of this call; data
	// consumers of this call's output depend on it.
	last *node
	// enterPred is the caller's segment node at the time of the call —
	// the call edge source for this call's first segment.
	enterPred *node
	// open is the in-construction segment (created lazily by the first
	// comm/ops after the previous segment closed).
	open *node
	// maxPred accumulates the best predecessor for the open segment.
	maxPred *node
}

// Analysis is the result of processing one event stream.
type Analysis struct {
	// SerialOps is the program's total operation count — its serial
	// length under the methodology's instruction-count time proxy.
	SerialOps uint64
	// CriticalOps is the longest dependent chain's operation count.
	CriticalOps uint64
	// Segments is the number of chain nodes constructed.
	Segments uint64
	// Chain lists the critical path's function names from main to leaf
	// (consecutive duplicates collapsed), the form §IV-C reports.
	Chain []string
	// ChainCtxs is the same path as context IDs.
	ChainCtxs []int32
}

// Parallelism returns the maximum theoretical function-level speedup: the
// ratio of serial length to critical path length (Fig 13's metric).
func (a *Analysis) Parallelism() float64 {
	if a.CriticalOps == 0 {
		if a.SerialOps == 0 {
			return 1
		}
		return float64(a.SerialOps)
	}
	return float64(a.SerialOps) / float64(a.CriticalOps)
}

// analyzer is the incremental chain-construction state machine, shared by
// the in-memory Analyze and the streaming AnalyzeReader.
type analyzer struct {
	a     *Analysis
	calls map[uint64]*callState
	stack []*callState
	best  *node
	names map[int32]string
}

func newAnalyzer() *analyzer {
	return &analyzer{
		a:     &Analysis{},
		calls: make(map[uint64]*callState),
		names: make(map[int32]string),
	}
}

func (z *analyzer) ensureOpen(cs *callState) *node {
	if cs.open == nil {
		cs.open = &node{ctx: cs.ctx, call: cs.callNum}
		z.a.Segments++
		// Sequential edge from the call's previous segment, or the
		// call edge for the first segment.
		switch {
		case cs.last != nil:
			cs.maxPred = cs.last
		case cs.enterPred != nil:
			cs.maxPred = cs.enterPred
		default:
			cs.maxPred = nil
		}
	}
	return cs.open
}

func (z *analyzer) step(e *trace.Event) error {
	switch e.Kind {
	case trace.KindDefCtx:
		z.names[e.Ctx] = e.Name

	case trace.KindEnter:
		cs := &callState{ctx: e.Ctx, callNum: e.Call}
		if len(z.stack) > 0 {
			parent := z.stack[len(z.stack)-1]
			// The caller's segment closed just before this Enter
			// (the profiler emits Ops first), so its last node is
			// the call edge source.
			if parent.last != nil {
				cs.enterPred = parent.last
			} else if parent.enterPred != nil {
				cs.enterPred = parent.enterPred
			}
		}
		z.calls[e.Call] = cs
		z.stack = append(z.stack, cs)

	case trace.KindLeave:
		if len(z.stack) == 0 {
			return fmt.Errorf("critpath: leave of call %d with empty stack", e.Call)
		}
		cs := z.stack[len(z.stack)-1]
		if cs.callNum != e.Call {
			return fmt.Errorf("critpath: leave of call %d while call %d is open", e.Call, cs.callNum)
		}
		z.stack = z.stack[:len(z.stack)-1]

	case trace.KindComm:
		cs := z.calls[e.Call]
		if cs == nil {
			return fmt.Errorf("critpath: comm into unknown call %d", e.Call)
		}
		z.ensureOpen(cs)
		// Producer's latest segment; synthetic producers (@startup,
		// @kernel) and producers with no recorded segment impose no
		// chain dependency.
		if src := z.calls[e.SrcCall]; src != nil && e.SrcCtx >= 0 {
			var srcNode *node
			if src.last != nil {
				srcNode = src.last
			} else if src.enterPred != nil {
				srcNode = src.enterPred
			}
			if srcNode != nil && (cs.maxPred == nil || srcNode.incl > cs.maxPred.incl) {
				cs.maxPred = srcNode
			}
		}

	case trace.KindOps:
		cs := z.calls[e.Call]
		if cs == nil {
			return fmt.Errorf("critpath: ops for unknown call %d", e.Call)
		}
		n := z.ensureOpen(cs)
		n.self = e.Ops
		z.a.SerialOps += e.Ops
		n.pred = cs.maxPred
		if n.pred != nil {
			n.incl = n.pred.incl + n.self
		} else {
			n.incl = n.self
		}
		if z.best == nil || n.incl > z.best.incl {
			z.best = n
		}
		cs.last = n
		cs.open = nil
		cs.maxPred = nil

	case trace.KindSys:
		// Syscalls impose no chain structure beyond the comm edges
		// already recorded for their buffers.
	}
	return nil
}

func (z *analyzer) finish(name func(int32) string) *Analysis {
	a := z.a
	if z.best != nil {
		a.CriticalOps = z.best.incl
		for n := z.best; n != nil; n = n.pred {
			a.ChainCtxs = append(a.ChainCtxs, n.ctx)
		}
		// Reverse into main→leaf order and collapse repeats.
		for i, j := 0, len(a.ChainCtxs)-1; i < j; i, j = i+1, j-1 {
			a.ChainCtxs[i], a.ChainCtxs[j] = a.ChainCtxs[j], a.ChainCtxs[i]
		}
		var compact []int32
		for _, c := range a.ChainCtxs {
			if len(compact) == 0 || compact[len(compact)-1] != c {
				compact = append(compact, c)
			}
		}
		a.ChainCtxs = compact
		for _, c := range a.ChainCtxs {
			a.Chain = append(a.Chain, name(c))
		}
	}
	return a
}

// Analyze builds dependency chains from an event stream and extracts the
// critical path.
func Analyze(tr *trace.Trace) (*Analysis, error) {
	z := newAnalyzer()
	for i := range tr.Events {
		if err := z.step(&tr.Events[i]); err != nil {
			return nil, err
		}
	}
	return z.finish(tr.CtxName), nil
}

// AnalyzeReader runs the same analysis over an encoded event file without
// materializing it: each event is processed as it is decoded, so traces
// larger than memory stream through in one pass.
func AnalyzeReader(r io.Reader) (*Analysis, error) {
	z := newAnalyzer()
	rd := trace.NewReader(r)
	for {
		e, err := rd.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return nil, err
		}
		if err := z.step(&e); err != nil {
			return nil, err
		}
	}
	return z.finish(func(ctx int32) string {
		switch ctx {
		case trace.CtxStartup:
			return "@startup"
		case trace.CtxKernel:
			return "@kernel"
		}
		if n, ok := z.names[ctx]; ok {
			return n
		}
		return fmt.Sprintf("<ctx#%d>", ctx)
	}), nil
}

// AnalyzeFile loads path with the parallel frame decoder (workers <= 0
// selects one worker per CPU) and analyzes it. The chain construction
// itself is inherently sequential, but on framed (v3) files the decode —
// checksum verification, decompression, varint decoding — fans out across
// the pool, which dominates load time for large traces. The seekable file
// also lets the reader preallocate from the footer's event count.
func AnalyzeFile(path string, workers int) (*Analysis, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	tr, err := trace.ReadAllWorkers(f, workers)
	if cerr := f.Close(); err == nil && cerr != nil {
		err = cerr
	}
	if err != nil {
		return nil, err
	}
	return Analyze(tr)
}

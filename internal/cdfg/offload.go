package cdfg

import (
	"fmt"
	"math"
	"sort"
)

// This file implements the paper's stated next step — "traverse the list,
// apply system constraints and perform an amenability test" — as the
// early-stage offload model its follow-up work (Nilakantan, Battle &
// Hempstead, CAL 2012 [23]) applies to Sigil profiles: assume each selected
// candidate's computation accelerates by a fixed factor, charge its unique
// communication over the bus, and estimate the whole-application speedup.

// OffloadConfig parameterizes the execution model.
type OffloadConfig struct {
	// Speedup is the assumed computational speedup of an accelerator
	// implementing a candidate sub-tree (must exceed 1).
	Speedup float64
	// MaxAccelerators bounds how many candidates receive hardware
	// (0 means all viable candidates).
	MaxAccelerators int
}

// CandidateGain is one candidate's contribution under the model.
type CandidateGain struct {
	Candidate
	// SwCycles is the candidate's software time (inclusive cycles).
	SwCycles uint64
	// AccelCycles is its modelled offloaded time: computation divided by
	// the assumed speedup, plus the data-offload time of Eq. 1.
	AccelCycles float64
	// Gain is the cycles saved (may be negative for candidates whose
	// breakeven exceeds the assumed speedup).
	Gain float64
}

// OffloadEstimate is the application-level result.
type OffloadEstimate struct {
	Config            OffloadConfig
	Selected          []CandidateGain
	BaselineCycles    uint64
	AcceleratedCycles float64
	// AppSpeedup is the estimated whole-application speedup — the
	// Amdahl-limited gain over all offloaded candidates.
	AppSpeedup float64
}

// EstimateOffload applies the execution model to a trimmed calltree: each
// candidate with positive gain (up to MaxAccelerators, best gains first) is
// offloaded; everything else stays in software.
func (t *Trimmed) EstimateOffload(cfg OffloadConfig) (*OffloadEstimate, error) {
	if cfg.Speedup <= 1 {
		return nil, fmt.Errorf("cdfg: offload speedup %v must exceed 1", cfg.Speedup)
	}
	bw := t.Graph.Config.BytesPerCycle
	est := &OffloadEstimate{Config: cfg, BaselineCycles: t.TotalCycles}

	var gains []CandidateGain
	for _, c := range t.Candidates {
		tsw := float64(c.InclCycles)
		tcomm := float64(c.ExtIn+c.ExtOut) / bw
		accel := tsw/cfg.Speedup + tcomm
		gains = append(gains, CandidateGain{
			Candidate:   c,
			SwCycles:    c.InclCycles,
			AccelCycles: accel,
			Gain:        tsw - accel,
		})
	}
	sort.Slice(gains, func(i, j int) bool { return gains[i].Gain > gains[j].Gain })

	limit := cfg.MaxAccelerators
	if limit <= 0 || limit > len(gains) {
		limit = len(gains)
	}
	total := float64(t.TotalCycles)
	for _, g := range gains[:limit] {
		if g.Gain <= 0 {
			break // sorted: everything after is also non-positive
		}
		est.Selected = append(est.Selected, g)
		total -= g.Gain
	}
	est.AcceleratedCycles = total
	if total > 0 {
		est.AppSpeedup = float64(t.TotalCycles) / total
	} else {
		est.AppSpeedup = math.Inf(1)
	}
	return est, nil
}

// SpeedupCurve evaluates the application speedup across assumed accelerator
// speedups — the early-stage design-space sweep of [23].
func (t *Trimmed) SpeedupCurve(speedups []float64, maxAccel int) ([]OffloadEstimate, error) {
	out := make([]OffloadEstimate, 0, len(speedups))
	for _, s := range speedups {
		est, err := t.EstimateOffload(OffloadConfig{Speedup: s, MaxAccelerators: maxAccel})
		if err != nil {
			return nil, err
		}
		out = append(out, *est)
	}
	return out, nil
}

package cdfg

import (
	"fmt"
	"io"
)

// WriteDOT renders the CDFG in Graphviz format in the style of the paper's
// Figure 1: solid edges are calls, dashed directed edges are data
// dependencies weighted by unique bytes. When trimmed is non-nil, merged
// sub-trees are shaded (Figure 2's boxes collapse to shaded candidates).
func (g *Graph) WriteDOT(w io.Writer, trimmed *Trimmed) error {
	p := func(format string, args ...any) error {
		_, err := fmt.Fprintf(w, format, args...)
		return err
	}
	if err := p("digraph cdfg {\n  node [shape=box];\n"); err != nil {
		return err
	}
	for _, n := range g.Nodes {
		style := ""
		if trimmed != nil && trimmed.Merged[n.Ctx] {
			style = ", style=filled, fillcolor=lightgray"
		}
		label := fmt.Sprintf("%s\\nops=%d cyc=%d", n.Name, n.SelfOps, n.SelfCycles)
		if err := p("  n%d [label=\"%s\"%s];\n", n.Ctx, label, style); err != nil {
			return err
		}
	}
	for _, n := range g.Nodes {
		if n.Parent != nil {
			if err := p("  n%d -> n%d;\n", n.Parent.Ctx, n.Ctx); err != nil {
				return err
			}
		}
	}
	for _, e := range g.Edges {
		if e.Src < 0 || e.Dst < 0 || e.Unique == 0 {
			continue // synthetic producers clutter the picture
		}
		if err := p("  n%d -> n%d [style=dashed, label=\"%d\"];\n", e.Src, e.Dst, e.Unique); err != nil {
			return err
		}
	}
	return p("}\n")
}

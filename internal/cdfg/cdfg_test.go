package cdfg

import (
	"math"
	"strings"
	"testing"

	"sigil/internal/core"
	"sigil/internal/vm"
)

// pipelineProgram builds: main → producer (writes 128B) → consumer (reads
// them, then burns many ops). The consumer sub-tree has 128 unique external
// input bytes and heavy compute, so it should be a strong candidate.
func pipelineProgram(t *testing.T, consumerOps int64) *vm.Program {
	t.Helper()
	b := vm.NewBuilder()
	buf := b.Reserve("buf", 128)
	main := b.Func("main")
	main.MoviU(vm.R1, buf)
	main.Call("producer")
	main.Call("consumer")
	main.Halt()

	p := b.Func("producer")
	p.Mov(vm.R4, vm.R1)
	p.Movi(vm.R5, 0)
	p.Movi(vm.R6, 16)
	top := p.Here()
	p.Store(vm.R4, 0, vm.R5, 8)
	p.Addi(vm.R4, vm.R4, 8)
	p.Addi(vm.R5, vm.R5, 1)
	p.Blt(vm.R5, vm.R6, top)
	p.Ret()

	c := b.Func("consumer")
	c.Mov(vm.R4, vm.R1)
	c.Movi(vm.R5, 0)
	c.Movi(vm.R6, 16)
	rd := c.Here()
	c.Load(vm.R7, vm.R4, 0, 8)
	c.Addi(vm.R4, vm.R4, 8)
	c.Addi(vm.R5, vm.R5, 1)
	c.Blt(vm.R5, vm.R6, rd)
	c.Movi(vm.R8, 0)
	c.Movi(vm.R9, consumerOps)
	burn := c.Here()
	c.Addi(vm.R8, vm.R8, 1)
	c.Blt(vm.R8, vm.R9, burn)
	c.Ret()
	return mustBuild(b)
}

func buildGraph(t *testing.T, p *vm.Program, cfg Config) *Graph {
	t.Helper()
	r, err := core.Run(p, core.Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	g, err := Build(r, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func nodeByName(g *Graph, name string) *Node {
	for _, n := range g.Nodes {
		if n.Name == name {
			return n
		}
	}
	return nil
}

func TestExternalCommunication(t *testing.T) {
	g := buildGraph(t, pipelineProgram(t, 10000), Config{})
	cons := nodeByName(g, "consumer")
	if cons == nil {
		t.Fatal("consumer node missing")
	}
	if cons.ExtIn != 128 {
		t.Errorf("consumer ExtIn = %d, want 128", cons.ExtIn)
	}
	if cons.ExtOut != 0 {
		t.Errorf("consumer ExtOut = %d, want 0", cons.ExtOut)
	}
	prod := nodeByName(g, "producer")
	if prod.ExtOut != 128 {
		t.Errorf("producer ExtOut = %d, want 128", prod.ExtOut)
	}
	// The root's sub-tree contains both endpoints of the producer→consumer
	// edge, so that edge is internal to main.
	root := g.Root
	if root.ExtIn != g.Result.StartupBytes+g.Result.KernelOutBytes {
		t.Errorf("root ExtIn = %d, want only startup/kernel (%d)",
			root.ExtIn, g.Result.StartupBytes)
	}
}

func TestInclusiveCosts(t *testing.T) {
	g := buildGraph(t, pipelineProgram(t, 1000), Config{})
	root := g.Root
	var selfSum uint64
	for _, n := range g.Nodes {
		selfSum += n.SelfCycles
	}
	if root.InclCycles != selfSum {
		t.Errorf("root inclusive %d != sum of selves %d", root.InclCycles, selfSum)
	}
	cons := nodeByName(g, "consumer")
	if cons.InclCycles != cons.SelfCycles {
		t.Errorf("leaf inclusive != self")
	}
	if cons.InclCycles >= root.InclCycles {
		t.Errorf("child inclusive >= root inclusive")
	}
}

func TestBreakevenFormula(t *testing.T) {
	// tsw=1000 cycles, 800 bytes at 8 B/cycle → tcomm=100 → S=1000/900.
	if got := breakeven(1000, 800, 8); math.Abs(got-1000.0/900.0) > 1e-12 {
		t.Errorf("breakeven = %v", got)
	}
	// Communication dominating: infinite.
	if got := breakeven(100, 1000, 8); !math.IsInf(got, 1) {
		t.Errorf("dominated breakeven = %v, want +Inf", got)
	}
	// Zero cycles: infinite.
	if got := breakeven(0, 0, 8); !math.IsInf(got, 1) {
		t.Errorf("zero-cycle breakeven = %v, want +Inf", got)
	}
	// No communication at all: exactly 1 (free offload).
	if got := breakeven(500, 0, 8); got != 1 {
		t.Errorf("comm-free breakeven = %v, want 1", got)
	}
}

func TestHeavyComputeLowBreakeven(t *testing.T) {
	g := buildGraph(t, pipelineProgram(t, 100000), Config{})
	cons := nodeByName(g, "consumer")
	if cons.Breakeven > 1.01 {
		t.Errorf("heavy consumer breakeven = %v, want ≈ 1", cons.Breakeven)
	}
	gSmall := buildGraph(t, pipelineProgram(t, 10), Config{})
	consSmall := nodeByName(gSmall, "consumer")
	if consSmall.Breakeven <= cons.Breakeven {
		t.Errorf("tiny consumer breakeven %v should exceed heavy %v",
			consSmall.Breakeven, cons.Breakeven)
	}
}

func TestTrimSelectsCandidates(t *testing.T) {
	g := buildGraph(t, pipelineProgram(t, 50000), Config{})
	tr := g.Trim()
	if len(tr.Candidates) == 0 {
		t.Fatal("no candidates")
	}
	for _, c := range tr.Candidates {
		if c.Node == g.Root {
			t.Error("root selected as candidate")
		}
	}
	// Candidates sorted ascending by breakeven.
	for i := 1; i < len(tr.Candidates); i++ {
		if tr.Candidates[i].Breakeven < tr.Candidates[i-1].Breakeven {
			t.Error("candidates not sorted")
		}
	}
	// The dominant consumer must be among them.
	found := false
	for _, c := range tr.Candidates {
		if c.Name == "consumer" {
			found = true
		}
	}
	if !found {
		t.Errorf("consumer not selected; candidates: %v", names(tr.Candidates))
	}
	if cov := tr.Coverage(); cov <= 0 || cov > 1 {
		t.Errorf("coverage = %v", cov)
	}
}

func names(cs []Candidate) []string {
	var out []string
	for _, c := range cs {
		out = append(out, c.Name)
	}
	return out
}

func TestTrimMergesSubtrees(t *testing.T) {
	// helper is called beneath worker; merging worker should absorb the
	// worker→helper communication (Fig 2's box semantics).
	b := vm.NewBuilder()
	buf := b.Reserve("buf", 64)
	scratch := b.Reserve("scratch", 64)
	main := b.Func("main")
	main.MoviU(vm.R1, buf)
	main.MoviU(vm.R2, scratch)
	main.Movi(vm.R3, 5)
	main.Store(vm.R1, 0, vm.R3, 8)
	main.Call("worker")
	main.Halt()
	w := b.Func("worker")
	w.Load(vm.R4, vm.R1, 0, 8) // external input: 8 bytes from main
	w.Store(vm.R2, 0, vm.R4, 8)
	w.Call("helper") // helper reads scratch: internal when merged
	w.Movi(vm.R8, 0)
	w.Movi(vm.R9, 20000)
	top := w.Here()
	w.Addi(vm.R8, vm.R8, 1)
	w.Blt(vm.R8, vm.R9, top)
	w.Ret()
	h := b.Func("helper")
	h.Load(vm.R5, vm.R2, 0, 8)
	h.Movi(vm.R8, 0)
	h.Movi(vm.R9, 5000)
	top2 := h.Here()
	h.Addi(vm.R8, vm.R8, 1)
	h.Blt(vm.R8, vm.R9, top2)
	h.Ret()

	g := buildGraph(t, mustBuild(b), Config{})
	worker := nodeByName(g, "worker")
	// Worker's sub-tree external input excludes the scratch bytes helper
	// read (worker produced them).
	if worker.ExtIn != 8 {
		t.Errorf("worker ExtIn = %d, want 8 (scratch absorbed)", worker.ExtIn)
	}
	tr := g.Trim()
	// Worker (breakeven ≈ 1, covers helper too) should be the merged
	// candidate; helper must not appear separately.
	var sawWorker, sawHelper bool
	for _, c := range tr.Candidates {
		switch c.Name {
		case "worker":
			sawWorker = true
		case "helper":
			sawHelper = true
		}
	}
	if !sawWorker || sawHelper {
		t.Errorf("candidates = %v, want worker merged (no separate helper)",
			names(tr.Candidates))
	}
	if !tr.Merged[worker.Ctx] {
		t.Error("worker not marked merged")
	}
	helper := nodeByName(g, "helper")
	if !tr.Merged[helper.Ctx] {
		t.Error("helper not marked merged into worker")
	}
}

func TestTrimDescendsWhenChildBetter(t *testing.T) {
	// parent does trivial work but moves lots of data; child is compute
	// heavy with little data: the heuristic must descend past parent.
	b := vm.NewBuilder()
	big := b.Reserve("big", 4096)
	main := b.Func("main")
	main.MoviU(vm.R1, big)
	main.Movi(vm.R2, 0)
	main.Movi(vm.R3, 512)
	wr := main.Here()
	main.Store(vm.R1, 0, vm.R2, 8)
	main.Addi(vm.R1, vm.R1, 8)
	main.Addi(vm.R2, vm.R2, 1)
	main.Blt(vm.R2, vm.R3, wr)
	main.MoviU(vm.R1, big)
	main.Call("parent")
	main.Halt()
	pa := b.Func("parent")
	pa.Mov(vm.R4, vm.R1)
	pa.Movi(vm.R5, 0)
	pa.Movi(vm.R6, 512)
	top := pa.Here()
	pa.Load(vm.R7, vm.R4, 0, 8) // reads all 4 KiB from main
	pa.Addi(vm.R4, vm.R4, 8)
	pa.Addi(vm.R5, vm.R5, 1)
	pa.Blt(vm.R5, vm.R6, top)
	pa.Call("kernelfn")
	pa.Ret()
	k := b.Func("kernelfn")
	k.Load(vm.R10, vm.R1, 0, 8) // small real input (keeps it a candidate)
	k.Movi(vm.R8, 0)
	k.Movi(vm.R9, 100000)
	burn := k.Here()
	k.Addi(vm.R8, vm.R8, 1)
	k.Blt(vm.R8, vm.R9, burn)
	k.Ret()

	g := buildGraph(t, mustBuild(b), Config{BytesPerCycle: 0.05})
	parent := nodeByName(g, "parent")
	child := nodeByName(g, "kernelfn")
	if child.Breakeven >= parent.Breakeven {
		t.Fatalf("test premise broken: child %v >= parent %v",
			child.Breakeven, parent.Breakeven)
	}
	tr := g.Trim()
	var sawParent, sawChild bool
	for _, c := range tr.Candidates {
		switch c.Name {
		case "parent":
			sawParent = true
		case "kernelfn":
			sawChild = true
		}
	}
	if sawParent || !sawChild {
		t.Errorf("candidates = %v, want descent to kernelfn", names(tr.Candidates))
	}
}

func TestMaxBreakevenFilter(t *testing.T) {
	g := buildGraph(t, pipelineProgram(t, 50000), Config{MaxBreakeven: 1.0000001})
	tr := g.Trim()
	for _, c := range tr.Candidates {
		if c.Breakeven > 1.0000001 {
			t.Errorf("candidate %s breakeven %v above limit", c.Name, c.Breakeven)
		}
	}
}

func TestMinCyclesFloor(t *testing.T) {
	g := buildGraph(t, pipelineProgram(t, 50000), Config{MinCycles: 1 << 40})
	tr := g.Trim()
	if len(tr.Candidates) != 0 {
		t.Errorf("candidates above impossible floor: %v", names(tr.Candidates))
	}
}

func TestTopBottomSelection(t *testing.T) {
	g := buildGraph(t, pipelineProgram(t, 50000), Config{})
	tr := g.Trim()
	top := tr.TopByBreakeven(1)
	if len(top) != 1 || top[0].Breakeven != tr.Candidates[0].Breakeven {
		t.Error("TopByBreakeven wrong")
	}
	bottom := tr.BottomByBreakeven(len(tr.Candidates) + 5)
	if len(bottom) != len(tr.Candidates) {
		t.Error("BottomByBreakeven overflow not clamped")
	}
	if len(bottom) > 1 && bottom[0].Breakeven < bottom[len(bottom)-1].Breakeven {
		t.Error("BottomByBreakeven not worst-first")
	}
}

func TestSubtreeMembership(t *testing.T) {
	g := buildGraph(t, pipelineProgram(t, 100), Config{})
	root := g.Root
	cons := nodeByName(g, "consumer")
	if !root.InSubtree(cons) {
		t.Error("consumer not in root subtree")
	}
	if cons.InSubtree(root) {
		t.Error("root in consumer subtree")
	}
	if !cons.InSubtree(cons) {
		t.Error("node not in own subtree")
	}
}

func TestBuildValidation(t *testing.T) {
	r, err := core.Run(pipelineProgram(t, 10), core.Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Build(r, Config{BytesPerCycle: -1}); err == nil {
		t.Error("negative bandwidth accepted")
	}
	if _, err := Build(&core.Result{}, Config{}); err == nil {
		t.Error("empty result accepted")
	}
}

func TestWriteDOT(t *testing.T) {
	g := buildGraph(t, pipelineProgram(t, 100), Config{})
	tr := g.Trim()
	var sb strings.Builder
	if err := g.WriteDOT(&sb, tr); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"digraph", "consumer", "style=dashed", "fillcolor"} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q", want)
		}
	}
}

func TestBandwidthSweep(t *testing.T) {
	g := buildGraph(t, pipelineProgram(t, 50000), Config{})
	cons := nodeByName(g, "consumer")
	pts, err := g.BandwidthSweep(cons, []float64{0.5, 1, 2, 4, 8, 16})
	if err != nil {
		t.Fatal(err)
	}
	// Breakeven improves (falls toward 1) monotonically with bandwidth.
	for i := 1; i < len(pts); i++ {
		if pts[i].Breakeven > pts[i-1].Breakeven {
			t.Errorf("breakeven rose with bandwidth: %+v", pts)
		}
	}
	if pts[len(pts)-1].Breakeven < 1 {
		t.Errorf("breakeven below 1: %+v", pts[len(pts)-1])
	}
	if _, err := g.BandwidthSweep(cons, []float64{0}); err == nil {
		t.Error("zero bandwidth accepted")
	}
}

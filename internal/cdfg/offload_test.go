package cdfg

import (
	"math"
	"testing"
)

func trimmedPipeline(t *testing.T, ops int64) *Trimmed {
	t.Helper()
	return buildGraph(t, pipelineProgram(t, ops), Config{}).Trim()
}

func TestOffloadGainPositiveAboveBreakeven(t *testing.T) {
	tr := trimmedPipeline(t, 50000)
	est, err := tr.EstimateOffload(OffloadConfig{Speedup: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(est.Selected) == 0 {
		t.Fatal("nothing offloaded at 10x")
	}
	if est.AppSpeedup <= 1 {
		t.Errorf("app speedup %v, want > 1", est.AppSpeedup)
	}
	if est.AcceleratedCycles >= float64(est.BaselineCycles) {
		t.Error("accelerated time not below baseline")
	}
}

// TestBreakevenIsZeroGainPoint verifies Eq. 1's meaning inside the model:
// accelerating a candidate by exactly its breakeven speedup yields zero net
// gain for that candidate.
func TestBreakevenIsZeroGainPoint(t *testing.T) {
	tr := trimmedPipeline(t, 50000)
	var cand *Candidate
	for i := range tr.Candidates {
		if tr.Candidates[i].Name == "consumer" {
			cand = &tr.Candidates[i]
		}
	}
	if cand == nil {
		t.Fatal("consumer candidate missing")
	}
	est, err := tr.EstimateOffload(OffloadConfig{Speedup: cand.Breakeven})
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range est.Selected {
		if g.Name != "consumer" {
			continue
		}
		if rel := math.Abs(g.Gain) / float64(g.SwCycles); rel > 1e-9 {
			t.Errorf("gain at breakeven = %v (rel %v), want ~0", g.Gain, rel)
		}
	}
	// At a speedup just above breakeven the candidate's gain is positive.
	est2, err := tr.EstimateOffload(OffloadConfig{Speedup: cand.Breakeven * 1.01})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, g := range est2.Selected {
		if g.Name == "consumer" && g.Gain > 0 {
			found = true
		}
	}
	if !found {
		t.Error("candidate not profitable just above its breakeven")
	}
}

func TestOffloadRespectsAcceleratorBudget(t *testing.T) {
	tr := trimmedPipeline(t, 50000)
	all, err := tr.EstimateOffload(OffloadConfig{Speedup: 10})
	if err != nil {
		t.Fatal(err)
	}
	one, err := tr.EstimateOffload(OffloadConfig{Speedup: 10, MaxAccelerators: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(one.Selected) > 1 {
		t.Errorf("budget ignored: %d selected", len(one.Selected))
	}
	if one.AppSpeedup > all.AppSpeedup+1e-9 {
		t.Error("one accelerator beats unlimited accelerators")
	}
	// The single pick is the best gain.
	if len(one.Selected) == 1 && len(all.Selected) > 0 &&
		one.Selected[0].Gain+1e-9 < all.Selected[0].Gain {
		t.Error("budgeted selection not greedy-best")
	}
}

func TestSpeedupCurveMonotone(t *testing.T) {
	tr := trimmedPipeline(t, 50000)
	curve, err := tr.SpeedupCurve([]float64{1.5, 2, 4, 8, 16, 64}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(curve); i++ {
		if curve[i].AppSpeedup+1e-9 < curve[i-1].AppSpeedup {
			t.Errorf("app speedup regressed: %v", curve)
		}
	}
	// Amdahl: even infinite candidate speedup is bounded by uncovered time.
	last := curve[len(curve)-1].AppSpeedup
	bound := 1 / (1 - tr.Coverage())
	if last > bound*1.05 {
		t.Errorf("speedup %v exceeds Amdahl bound %v", last, bound)
	}
}

func TestOffloadRejectsBadSpeedup(t *testing.T) {
	tr := trimmedPipeline(t, 1000)
	if _, err := tr.EstimateOffload(OffloadConfig{Speedup: 1}); err == nil {
		t.Error("speedup 1 accepted")
	}
	if _, err := tr.EstimateOffload(OffloadConfig{Speedup: 0}); err == nil {
		t.Error("speedup 0 accepted")
	}
}

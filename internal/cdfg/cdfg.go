// Package cdfg post-processes Sigil profiles into control data flow graphs —
// calltrees whose nodes are calling contexts and whose dashed edges are data
// dependencies weighted by unique communicated bytes — and implements the
// paper's hardware/software partitioning case study: sub-tree merging with
// inclusive costs, the breakeven-speedup metric (Eq. 1), and the
// max-coverage / min-communication trim heuristic.
package cdfg

import (
	"fmt"
	"math"
	"sort"

	"sigil/internal/core"
)

// Config parameterizes the partitioning model.
type Config struct {
	// BytesPerCycle is the assumed SoC bus bandwidth used to convert
	// offloaded bytes into communication time (default 8 bytes/cycle).
	BytesPerCycle float64

	// MaxBreakeven excludes candidates whose breakeven speedup exceeds
	// it from coverage and candidate lists (0 means "any finite value").
	MaxBreakeven float64

	// MinCycles is a noise floor: sub-trees with fewer inclusive
	// estimated cycles are never candidates (default 0).
	MinCycles uint64

	// AllowSilent admits candidates whose merged sub-tree exchanges no
	// external unique bytes at all. By default such nodes (e.g. a PRNG
	// whose state never leaves it) are skipped: a communication-aware
	// selector has nothing to say about them, and their breakeven of
	// exactly 1.0 would crowd out every real candidate.
	AllowSilent bool
}

func (c Config) withDefaults() Config {
	if c.BytesPerCycle == 0 {
		c.BytesPerCycle = 8
	}
	return c
}

// Node is one CDFG node: a calling context annotated with self and
// inclusive costs and the external unique communication its merged sub-tree
// would incur.
type Node struct {
	Ctx      int32
	Name     string
	Path     string
	Parent   *Node
	Children []*Node
	Calls    uint64

	SelfCycles uint64 // Callgrind cycle estimate for the context alone
	InclCycles uint64 // cycle estimate for the whole sub-tree
	SelfOps    uint64
	InclOps    uint64

	// ExtIn / ExtOut are the unique bytes crossing the sub-tree boundary
	// inward and outward: the data an accelerator implementing the whole
	// sub-tree would have to move (Fig 2's boxes).
	ExtIn  uint64
	ExtOut uint64

	// Breakeven is Eq. 1 for the merged sub-tree: the computational
	// speedup an accelerator must beat to offset data offload time.
	// +Inf means offload time alone exceeds software time.
	Breakeven float64

	tin, tout int // DFS interval for O(1) subtree membership
}

// InSubtree reports whether x lies in n's sub-tree (including n itself).
func (n *Node) InSubtree(x *Node) bool {
	return x != nil && n.tin <= x.tin && x.tin < n.tout
}

// Graph is the control data flow graph for one profile.
type Graph struct {
	Config Config
	Result *core.Result
	Root   *Node
	Nodes  []*Node // indexed by context ID
	Edges  []core.Edge
}

// Build constructs the CDFG from a Sigil profile, computing inclusive costs,
// external unique communication per sub-tree, and breakeven speedups.
func Build(r *core.Result, cfg Config) (*Graph, error) {
	cfg = cfg.withDefaults()
	if cfg.BytesPerCycle <= 0 {
		return nil, fmt.Errorf("cdfg: BytesPerCycle must be positive")
	}
	prof := r.Profile
	if prof == nil || prof.Root == nil {
		return nil, fmt.Errorf("cdfg: profile has no calltree")
	}
	g := &Graph{Config: cfg, Result: r, Edges: r.Edges}
	g.Nodes = make([]*Node, len(prof.Nodes))
	for i, pn := range prof.Nodes {
		g.Nodes[i] = &Node{
			Ctx:   int32(i),
			Name:  pn.Name,
			Path:  pn.Path(),
			Calls: pn.Calls,
		}
		g.Nodes[i].SelfCycles = pn.Self.CycleEstimate()
		g.Nodes[i].SelfOps = pn.Self.Ops()
	}
	for i, pn := range prof.Nodes {
		n := g.Nodes[i]
		if pn.Parent != nil {
			n.Parent = g.Nodes[pn.Parent.ID]
			n.Parent.Children = append(n.Parent.Children, n)
		}
	}
	g.Root = g.Nodes[prof.Root.ID]

	// DFS numbering + inclusive costs (iterative to tolerate deep trees).
	clock := 0
	var dfs func(n *Node)
	dfs = func(n *Node) {
		n.tin = clock
		clock++
		n.InclCycles = n.SelfCycles
		n.InclOps = n.SelfOps
		for _, c := range n.Children {
			dfs(c)
			n.InclCycles += c.InclCycles
			n.InclOps += c.InclOps
		}
		n.tout = clock
	}
	dfs(g.Root)

	// External unique communication per sub-tree: an edge contributes to
	// node n when exactly one endpoint lies inside n's sub-tree. Edges
	// from @startup / @kernel are always external sources.
	for _, n := range g.Nodes {
		for _, e := range g.Edges {
			src := g.nodeFor(e.Src)
			dst := g.nodeFor(e.Dst)
			srcIn := src != nil && n.InSubtree(src)
			dstIn := dst != nil && n.InSubtree(dst)
			switch {
			case dstIn && !srcIn:
				n.ExtIn += e.Unique
			case srcIn && !dstIn:
				n.ExtOut += e.Unique
			}
		}
		n.Breakeven = breakeven(n.InclCycles, n.ExtIn+n.ExtOut, cfg.BytesPerCycle)
	}
	return g, nil
}

func (g *Graph) nodeFor(ctx int32) *Node {
	if ctx >= 0 && int(ctx) < len(g.Nodes) {
		return g.Nodes[ctx]
	}
	return nil // synthetic producers are outside every sub-tree
}

// breakeven implements Eq. 1: S = tsw / (tsw − (t_in + t_out)), with times
// in cycles and communication converted through the bus bandwidth.
func breakeven(inclCycles, extBytes uint64, bytesPerCycle float64) float64 {
	tsw := float64(inclCycles)
	if tsw == 0 {
		return math.Inf(1)
	}
	tcomm := float64(extBytes) / bytesPerCycle
	if tcomm >= tsw {
		return math.Inf(1)
	}
	return tsw / (tsw - tcomm)
}

// Candidate is a selected leaf of the trimmed calltree: a merged sub-tree
// proposed for hardware acceleration.
type Candidate struct {
	*Node
	// CoverageShare is the candidate's inclusive estimated time as a
	// fraction of whole-program time (its Amdahl ceiling).
	CoverageShare float64
}

// Trimmed is the result of the max-coverage / min-communication heuristic.
type Trimmed struct {
	Graph *Graph
	// Candidates are the trimmed tree's viable leaves, sorted by
	// ascending breakeven speedup (Table II order).
	Candidates []Candidate
	// Merged marks, per context ID, whether the context was merged into
	// a candidate sub-tree (its own or an ancestor's).
	Merged []bool
	// CoveredCycles / TotalCycles give Fig 7's coverage split.
	CoveredCycles uint64
	TotalCycles   uint64
}

// Trim applies the heuristic: post-order, a node becomes a merged candidate
// leaf when its own merged-sub-tree breakeven is strictly better than the
// best achievable anywhere below it — so every branch of the trimmed tree
// ends at its minimum-breakeven point, and ties descend toward the leaves
// (an ancestor must actually *improve* on its descendants to absorb them).
// The root is never a candidate (merging main is the whole program).
func (g *Graph) Trim() *Trimmed {
	t := &Trimmed{Graph: g, Merged: make([]bool, len(g.Nodes))}
	t.TotalCycles = g.Root.InclCycles
	limit := g.Config.MaxBreakeven
	if limit <= 0 {
		limit = math.Inf(1)
	}

	var visit func(n *Node)
	visit = func(n *Node) {
		if n != g.Root && n.viable(g.Config) && n.Breakeven < n.bestBelow(g.Config) {
			t.markMerged(n)
			t.Candidates = append(t.Candidates, Candidate{Node: n})
			return
		}
		for _, c := range n.Children {
			visit(c)
		}
	}
	visit(g.Root)

	kept := t.Candidates[:0]
	for _, c := range t.Candidates {
		if c.Breakeven <= limit {
			c.CoverageShare = float64(c.InclCycles) / float64(max64(t.TotalCycles, 1))
			t.CoveredCycles += c.InclCycles
			kept = append(kept, c)
		}
	}
	t.Candidates = kept
	sort.SliceStable(t.Candidates, func(i, j int) bool {
		if t.Candidates[i].Breakeven != t.Candidates[j].Breakeven {
			return t.Candidates[i].Breakeven < t.Candidates[j].Breakeven
		}
		return t.Candidates[i].InclCycles > t.Candidates[j].InclCycles
	})
	return t
}

// viable reports whether a node can be a candidate at all.
func (n *Node) viable(cfg Config) bool {
	if math.IsInf(n.Breakeven, 1) || n.InclCycles < cfg.MinCycles {
		return false
	}
	return cfg.AllowSilent || n.ExtIn+n.ExtOut > 0
}

// bestBelow returns the minimum breakeven among viable strict descendants
// (+Inf when none).
func (n *Node) bestBelow(cfg Config) float64 {
	best := math.Inf(1)
	for _, c := range n.Children {
		if c.viable(cfg) && c.Breakeven < best {
			best = c.Breakeven
		}
		if b := c.bestBelow(cfg); b < best {
			best = b
		}
	}
	return best
}

func (t *Trimmed) markMerged(n *Node) {
	t.Merged[n.Ctx] = true
	for _, c := range n.Children {
		t.markMerged(c)
	}
}

// Coverage returns the fraction of whole-program estimated time spent in
// candidate leaves — the lower bar of the paper's Figure 7.
func (t *Trimmed) Coverage() float64 {
	if t.TotalCycles == 0 {
		return 0
	}
	return float64(t.CoveredCycles) / float64(t.TotalCycles)
}

// TopByBreakeven returns the k best candidates (Table II rows).
func (t *Trimmed) TopByBreakeven(k int) []Candidate {
	if k > len(t.Candidates) {
		k = len(t.Candidates)
	}
	return t.Candidates[:k]
}

// BottomByBreakeven returns the k worst candidates, worst last removed —
// i.e. the k largest breakevens in ascending order (Table III rows list
// them descending from the worst; callers render as needed).
func (t *Trimmed) BottomByBreakeven(k int) []Candidate {
	n := len(t.Candidates)
	if k > n {
		k = n
	}
	out := make([]Candidate, k)
	copy(out, t.Candidates[n-k:])
	// Present worst-first, matching Table III's top-to-bottom order.
	for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
		out[i], out[j] = out[j], out[i]
	}
	return out
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

// SweepPoint is one (bandwidth, breakeven) sample of a sensitivity sweep.
type SweepPoint struct {
	BytesPerCycle float64
	Breakeven     float64
}

// BandwidthSweep evaluates a node's merged-sub-tree breakeven speedup across
// candidate bus bandwidths — the "preliminary knowledge of a target
// platform" exploration the partitioning case study calls for. Bandwidths
// must be positive.
func (g *Graph) BandwidthSweep(n *Node, bandwidths []float64) ([]SweepPoint, error) {
	out := make([]SweepPoint, 0, len(bandwidths))
	for _, bw := range bandwidths {
		if bw <= 0 {
			return nil, fmt.Errorf("cdfg: bandwidth %v must be positive", bw)
		}
		out = append(out, SweepPoint{
			BytesPerCycle: bw,
			Breakeven:     breakeven(n.InclCycles, n.ExtIn+n.ExtOut, bw),
		})
	}
	return out, nil
}

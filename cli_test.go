package sigil

// End-to-end CLI integration: build the command binaries once and drive the
// profile → post-process pipeline through real files, the way a user would.

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
	"time"

	"sigil/internal/core"
	"sigil/internal/trace"
)

func buildCmd(t *testing.T, dir, name string) string {
	t.Helper()
	bin := filepath.Join(dir, name)
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/"+name)
	cmd.Env = os.Environ()
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building %s: %v\n%s", name, err, out)
	}
	return bin
}

func runCmd(t *testing.T, bin string, args ...string) string {
	t.Helper()
	out, err := exec.Command(bin, args...).CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v: %v\n%s", filepath.Base(bin), args, err, out)
	}
	return string(out)
}

func TestCLIPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	dir := t.TempDir()
	sigilBin := buildCmd(t, dir, "sigil")
	partBin := buildCmd(t, dir, "sigil-part")
	reuseBin := buildCmd(t, dir, "sigil-reuse")
	critBin := buildCmd(t, dir, "sigil-critpath")

	// List workloads.
	if out := runCmd(t, sigilBin, "-list"); !strings.Contains(out, "streamcluster") {
		t.Errorf("-list missing workloads:\n%s", out)
	}

	// Profile canneal with reuse tracking; save profile + events.
	prof := filepath.Join(dir, "canneal.profile")
	evt := filepath.Join(dir, "canneal.evt")
	out := runCmd(t, sigilBin, "-workload", "canneal", "-reuse",
		"-o", prof, "-events", evt, "-top", "5")
	if !strings.Contains(out, "netlist::swap_locations") && !strings.Contains(out, "mul") {
		t.Errorf("summary missing canneal functions:\n%s", out)
	}

	// Partition from the saved profile.
	out = runCmd(t, partBin, "-profile", prof, "-top", "3")
	if !strings.Contains(out, "S(breakeven)") || !strings.Contains(out, "coverage") {
		t.Errorf("partition output malformed:\n%s", out)
	}

	// Reuse analysis from the same file.
	out = runCmd(t, reuseBin, "-profile", prof, "-fn", "mul")
	if !strings.Contains(out, "zero re-use") || !strings.Contains(out, "mul") {
		t.Errorf("reuse output malformed:\n%s", out)
	}

	// Critical path from the saved event file, with scheduling.
	out = runCmd(t, critBin, "-events", evt, "-slots", "2,4")
	if !strings.Contains(out, "max parallelism") || !strings.Contains(out, "4 slots") &&
		!strings.Contains(out, "4     ") {
		t.Errorf("critpath output malformed:\n%s", out)
	}

	// Assemble-and-run path: write a .sasm file and profile it.
	asm := filepath.Join(dir, "toy.sasm")
	src := `
.reserve buf 32
func main {
    movi r1, buf
    movi r2, 7
    store8 r1, 0, r2
    call reader
    halt
}
func reader {
    load8 r3, r1, 0
    ret
}
`
	if err := os.WriteFile(asm, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	out = runCmd(t, sigilBin, "-asm", asm)
	if !strings.Contains(out, "reader") {
		t.Errorf("asm profile missing function:\n%s", out)
	}
}

func TestCLIReportAndExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	dir := t.TempDir()
	reportBin := buildCmd(t, dir, "sigil-report")
	expBin := buildCmd(t, dir, "experiments")

	md := filepath.Join(dir, "report.md")
	runCmd(t, reportBin, "-workload", "vips", "-o", md, "-slots", "2")
	data, err := os.ReadFile(md)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"# Sigil analysis: vips", "conv_gen", "## Data re-use"} {
		if !strings.Contains(string(data), want) {
			t.Errorf("report missing %q", want)
		}
	}

	if out := runCmd(t, expBin, "-only", "table1"); !strings.Contains(out, "Shadow object contents") {
		t.Errorf("experiments table1 malformed:\n%s", out)
	}
	if out := runCmd(t, expBin, "-only", "memlimit"); !strings.Contains(out, "relative error") {
		t.Errorf("experiments memlimit malformed:\n%s", out)
	}
}

// TestCLITelemetry drives the observability surface end to end: a profiled
// run with -progress emits JSON heartbeats and phase spans on stderr, and
// -telemetry-dump prints a final snapshot whose instruction count matches
// the summary the profile itself reports.
func TestCLITelemetry(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	dir := t.TempDir()
	sigilBin := buildCmd(t, dir, "sigil")

	cmd := exec.Command(sigilBin, "-workload", "fft",
		"-progress", "5ms", "-log-format", "json", "-telemetry-dump")
	var stdout, stderr strings.Builder
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		t.Fatalf("telemetry run failed: %v\nstderr:\n%s", err, stderr.String())
	}

	logs := stderr.String()
	if !strings.Contains(logs, `"msg":"heartbeat"`) || !strings.Contains(logs, `"instrs_per_sec"`) {
		t.Errorf("no heartbeat on stderr:\n%s", logs)
	}
	for _, phase := range []string{`"name":"assemble"`, `"name":"run"`, `"name":"postprocess"`} {
		if !strings.Contains(logs, phase) {
			t.Errorf("missing phase span %s:\n%s", phase, logs)
		}
	}

	// The dump's instruction count must equal the profile's own total.
	out := stdout.String()
	summary := regexp.MustCompile(`instructions: (\d+)`).FindStringSubmatch(out)
	dump := regexp.MustCompile(`instrs (\d+)`).FindStringSubmatch(out)
	if summary == nil || dump == nil {
		t.Fatalf("summary/dump instruction lines not found:\n%s", out)
	}
	if summary[1] != dump[1] {
		t.Errorf("telemetry dump instrs %s != profile instrs %s", dump[1], summary[1])
	}
}

// TestCLISigintContract pins the interrupt behaviour on its own: a run that
// takes a SIGINT must exit 130, say so on stderr, and leave each output
// path either absent or footer-complete — never truncated. Signal delivery
// races the run, so the test ladders the pre-signal delay and retries until
// the interrupt lands mid-run.
func TestCLISigintContract(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	dir := t.TempDir()
	sigilBin := buildCmd(t, dir, "sigil")

	for attempt := 0; attempt < 5; attempt++ {
		prof := filepath.Join(dir, fmt.Sprintf("int%d.profile", attempt))
		evt := filepath.Join(dir, fmt.Sprintf("int%d.evt", attempt))
		cmd := exec.Command(sigilBin, "-workload", "canneal", "-class", "simlarge",
			"-o", prof, "-events", evt)
		var stderr strings.Builder
		cmd.Stderr = &stderr
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		time.Sleep(time.Duration(100*(attempt+1)) * time.Millisecond)
		if err := cmd.Process.Signal(os.Interrupt); err != nil {
			t.Fatal(err)
		}
		err := cmd.Wait()
		if err == nil {
			continue // the run beat the signal; give the next attempt longer
		}
		var exitErr *exec.ExitError
		if !errors.As(err, &exitErr) || exitErr.ExitCode() != 130 {
			t.Fatalf("interrupted run: %v, want exit 130\nstderr:\n%s", err, stderr.String())
		}
		if msg := stderr.String(); !strings.Contains(msg, "interrupted") &&
			!strings.Contains(msg, "context canceled") {
			t.Errorf("stderr does not explain the interrupt:\n%s", msg)
		}
		if _, statErr := os.Stat(prof); statErr == nil {
			if _, err := core.ReadProfileFile(prof); err != nil {
				t.Errorf("interrupted profile exists but is incomplete: %v", err)
			}
		}
		if f, statErr := os.Open(evt); statErr == nil {
			_, rep, err := trace.Salvage(f)
			f.Close()
			if err != nil || !rep.Complete {
				t.Errorf("interrupted event file exists but lacks its footer: %v %v", err, rep)
			}
		}
		return
	}
	t.Skip("every attempt finished before the signal landed")
}

// TestCLIFaultTolerance drives the robustness surface end to end: resource
// budgets leave complete partial outputs with exit 0, SIGINT leaves either
// no output file or a complete footer-verified one with exit 130, and a
// truncated event file is recoverable with -salvage.
func TestCLIFaultTolerance(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	dir := t.TempDir()
	sigilBin := buildCmd(t, dir, "sigil")
	critBin := buildCmd(t, dir, "sigil-critpath")

	// A budget-bounded run is a success: partial profile + events, exit 0.
	prof := filepath.Join(dir, "budget.profile")
	evt := filepath.Join(dir, "budget.evt")
	out := runCmd(t, sigilBin, "-workload", "canneal", "-maxinstrs", "50000",
		"-o", prof, "-events", evt)
	if !strings.Contains(out, "run ended early") || !strings.Contains(out, "instructions budget") {
		t.Errorf("budget run did not report early end:\n%s", out)
	}
	res, err := core.ReadProfileFile(prof)
	if err != nil {
		t.Fatalf("partial profile unreadable: %v", err)
	}
	if res.Profile.TotalInstrs == 0 {
		t.Error("partial profile shows no progress")
	}
	f, err := os.Open(evt)
	if err != nil {
		t.Fatal(err)
	}
	_, rep, err := trace.Salvage(f)
	f.Close()
	if err != nil || !rep.Complete {
		t.Errorf("budget-run event file not footer-complete: %v %v", err, rep)
	}

	// The hard chunk budget ends the run too; -memlimit (FIFO eviction)
	// composes with it and stays a normal, complete run on its own.
	out = runCmd(t, sigilBin, "-workload", "dedup", "-chunkbudget", "4")
	if !strings.Contains(out, "shadow-chunks budget") {
		t.Errorf("chunk-budget run did not report the budget:\n%s", out)
	}
	if out = runCmd(t, sigilBin, "-workload", "dedup", "-memlimit", "8"); strings.Contains(out, "budget") {
		t.Errorf("-memlimit alone must not trip a budget:\n%s", out)
	}

	// A wall-clock budget behaves the same way.
	out = runCmd(t, sigilBin, "-workload", "canneal", "-class", "simlarge",
		"-timeout", "5ms", "-o", prof)
	if !strings.Contains(out, "wall-clock budget") {
		t.Errorf("timeout run did not report the wall budget:\n%s", out)
	}

	// SIGINT mid-run: exit 130 and salvaged outputs (or none at all).
	prof2 := filepath.Join(dir, "int.profile")
	evt2 := filepath.Join(dir, "int.evt")
	cmd := exec.Command(sigilBin, "-workload", "canneal", "-class", "simlarge",
		"-o", prof2, "-events", evt2)
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(300 * time.Millisecond)
	if err := cmd.Process.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}
	err = cmd.Wait()
	var exitErr *exec.ExitError
	if err == nil {
		t.Log("run finished before the signal landed; skipping exit-code check")
	} else if !errors.As(err, &exitErr) || exitErr.ExitCode() != 130 {
		t.Fatalf("interrupted run: %v, want exit 130", err)
	}
	if _, statErr := os.Stat(prof2); statErr == nil {
		if _, err := core.ReadProfileFile(prof2); err != nil {
			t.Errorf("interrupted profile exists but is incomplete: %v", err)
		}
	}
	if f, statErr := os.Open(evt2); statErr == nil {
		_, rep, err := trace.Salvage(f)
		f.Close()
		if err != nil || !rep.Complete {
			t.Errorf("interrupted event file exists but lacks its footer: %v %v", err, rep)
		}
	}

	// Truncate the complete event file: plain read must fail and point at
	// -salvage; -salvage must recover the prefix.
	data, err := os.ReadFile(evt)
	if err != nil {
		t.Fatal(err)
	}
	cut := filepath.Join(dir, "cut.evt")
	if err := os.WriteFile(cut, data[:len(data)*3/4], 0o644); err != nil {
		t.Fatal(err)
	}
	rawOut, err := exec.Command(critBin, "-events", cut).CombinedOutput()
	if err == nil {
		t.Errorf("truncated event file accepted:\n%s", rawOut)
	}
	if !strings.Contains(string(rawOut), "-salvage") {
		t.Errorf("error does not mention -salvage:\n%s", rawOut)
	}
	out = runCmd(t, critBin, "-events", cut, "-salvage")
	if !strings.Contains(out, "recovered") || !strings.Contains(out, "max parallelism") {
		t.Errorf("salvage run malformed:\n%s", out)
	}
}

// TestCLILint drives the sigil-lint binary: sorted analyzer listing,
// unknown-name hardening, and the -vm static program verifier in both text
// and JSON modes.
func TestCLILint(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	dir := t.TempDir()
	lintBin := buildCmd(t, dir, "sigil-lint")

	// -list prints every analyzer, one per line, sorted by name.
	out := runCmd(t, lintBin, "-list")
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	var names []string
	for _, l := range lines {
		fields := strings.Fields(l)
		if len(fields) < 2 {
			t.Fatalf("-list line without a doc: %q", l)
		}
		names = append(names, fields[0])
	}
	if !sort.StringsAreSorted(names) {
		t.Errorf("-list not sorted: %v", names)
	}
	for _, want := range []string{"shardown", "hotalloc", "goleak", "panicfree"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("-list missing %s:\n%s", want, out)
		}
	}

	// Unknown analyzer names are a usage error: exit 2.
	rawOut, err := exec.Command(lintBin, "-run", "bogus").CombinedOutput()
	var exitErr *exec.ExitError
	if !errors.As(err, &exitErr) || exitErr.ExitCode() != 2 {
		t.Fatalf("-run bogus: %v, want exit 2\n%s", err, rawOut)
	}
	if !strings.Contains(string(rawOut), `unknown analyzer "bogus"`) {
		t.Errorf("-run bogus output:\n%s", rawOut)
	}

	// -vm: a malformed program yields typed diagnostics and exit 1; JSON
	// mode carries the class/func/pc fields for CI annotation.
	bad := filepath.Join(dir, "bad.sasm")
	if err := os.WriteFile(bad, []byte("func main {\n movi r1, 16\n load8 r2, r1, 0\n}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	rawOut, err = exec.Command(lintBin, "-vm", bad).CombinedOutput()
	if !errors.As(err, &exitErr) || exitErr.ExitCode() != 1 {
		t.Fatalf("-vm bad.sasm: %v, want exit 1\n%s", err, rawOut)
	}
	for _, want := range []string{"vm-fall-off", "vm-memory", "main+1 (load)"} {
		if !strings.Contains(string(rawOut), want) {
			t.Errorf("-vm output missing %q:\n%s", want, rawOut)
		}
	}
	jsonOut, err := exec.Command(lintBin, "-vm", "-json", bad).Output()
	if !errors.As(err, &exitErr) || exitErr.ExitCode() != 1 {
		t.Fatalf("-vm -json: %v, want exit 1", err)
	}
	var diags []map[string]any
	if err := json.Unmarshal(jsonOut, &diags); err != nil {
		t.Fatalf("-vm -json output is not JSON: %v\n%s", err, jsonOut)
	}
	if len(diags) == 0 || diags[0]["class"] == "" || diags[0]["func"] != "main" {
		t.Errorf("-vm -json diagnostics malformed: %v", diags)
	}

	// A well-formed program is clean: exit 0, no output in text mode.
	good := filepath.Join(dir, "good.sasm")
	if err := os.WriteFile(good, []byte("func main {\n movi r1, 1\n halt\n}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if out := runCmd(t, lintBin, "-vm", good); strings.TrimSpace(out) != "" {
		t.Errorf("-vm on a clean program produced output:\n%s", out)
	}
}

package sigil

// End-to-end CLI integration: build the command binaries once and drive the
// profile → post-process pipeline through real files, the way a user would.

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func buildCmd(t *testing.T, dir, name string) string {
	t.Helper()
	bin := filepath.Join(dir, name)
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/"+name)
	cmd.Env = os.Environ()
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building %s: %v\n%s", name, err, out)
	}
	return bin
}

func runCmd(t *testing.T, bin string, args ...string) string {
	t.Helper()
	out, err := exec.Command(bin, args...).CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v: %v\n%s", filepath.Base(bin), args, err, out)
	}
	return string(out)
}

func TestCLIPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	dir := t.TempDir()
	sigilBin := buildCmd(t, dir, "sigil")
	partBin := buildCmd(t, dir, "sigil-part")
	reuseBin := buildCmd(t, dir, "sigil-reuse")
	critBin := buildCmd(t, dir, "sigil-critpath")

	// List workloads.
	if out := runCmd(t, sigilBin, "-list"); !strings.Contains(out, "streamcluster") {
		t.Errorf("-list missing workloads:\n%s", out)
	}

	// Profile canneal with reuse tracking; save profile + events.
	prof := filepath.Join(dir, "canneal.profile")
	evt := filepath.Join(dir, "canneal.evt")
	out := runCmd(t, sigilBin, "-workload", "canneal", "-reuse",
		"-o", prof, "-events", evt, "-top", "5")
	if !strings.Contains(out, "netlist::swap_locations") && !strings.Contains(out, "mul") {
		t.Errorf("summary missing canneal functions:\n%s", out)
	}

	// Partition from the saved profile.
	out = runCmd(t, partBin, "-profile", prof, "-top", "3")
	if !strings.Contains(out, "S(breakeven)") || !strings.Contains(out, "coverage") {
		t.Errorf("partition output malformed:\n%s", out)
	}

	// Reuse analysis from the same file.
	out = runCmd(t, reuseBin, "-profile", prof, "-fn", "mul")
	if !strings.Contains(out, "zero re-use") || !strings.Contains(out, "mul") {
		t.Errorf("reuse output malformed:\n%s", out)
	}

	// Critical path from the saved event file, with scheduling.
	out = runCmd(t, critBin, "-events", evt, "-slots", "2,4")
	if !strings.Contains(out, "max parallelism") || !strings.Contains(out, "4 slots") &&
		!strings.Contains(out, "4     ") {
		t.Errorf("critpath output malformed:\n%s", out)
	}

	// Assemble-and-run path: write a .sasm file and profile it.
	asm := filepath.Join(dir, "toy.sasm")
	src := `
.reserve buf 32
func main {
    movi r1, buf
    movi r2, 7
    store8 r1, 0, r2
    call reader
    halt
}
func reader {
    load8 r3, r1, 0
    ret
}
`
	if err := os.WriteFile(asm, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	out = runCmd(t, sigilBin, "-asm", asm)
	if !strings.Contains(out, "reader") {
		t.Errorf("asm profile missing function:\n%s", out)
	}
}

func TestCLIReportAndExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	dir := t.TempDir()
	reportBin := buildCmd(t, dir, "sigil-report")
	expBin := buildCmd(t, dir, "experiments")

	md := filepath.Join(dir, "report.md")
	runCmd(t, reportBin, "-workload", "vips", "-o", md, "-slots", "2")
	data, err := os.ReadFile(md)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"# Sigil analysis: vips", "conv_gen", "## Data re-use"} {
		if !strings.Contains(string(data), want) {
			t.Errorf("report missing %q", want)
		}
	}

	if out := runCmd(t, expBin, "-only", "table1"); !strings.Contains(out, "Shadow object contents") {
		t.Errorf("experiments table1 malformed:\n%s", out)
	}
	if out := runCmd(t, expBin, "-only", "memlimit"); !strings.Contains(out, "relative error") {
		t.Errorf("experiments memlimit malformed:\n%s", out)
	}
}

GO ?= go

.PHONY: build test race check fuzz fmt bench lint

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed:"; echo "$$out"; exit 1; fi

bench:
	sh scripts/bench.sh

lint:
	$(GO) run ./cmd/sigil-lint ./...

fuzz:
	$(GO) test -run '^$$' -fuzz FuzzReader -fuzztime $${FUZZTIME:-5s} ./internal/trace
	$(GO) test -run '^$$' -fuzz FuzzReadProfile -fuzztime $${FUZZTIME:-5s} ./internal/core
	$(GO) test -run '^$$' -fuzz FuzzBatchedClassifier -fuzztime $${FUZZTIME:-5s} ./internal/core

check:
	sh scripts/check.sh

GO ?= go

.PHONY: build test race check fuzz

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

fuzz:
	$(GO) test -run '^$$' -fuzz FuzzReader -fuzztime $${FUZZTIME:-5s} ./internal/trace
	$(GO) test -run '^$$' -fuzz FuzzReadProfile -fuzztime $${FUZZTIME:-5s} ./internal/core

check:
	sh scripts/check.sh

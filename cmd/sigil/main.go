// Command sigil profiles a program — a bundled workload or an assembled
// .sasm file — and reports the classified function-level communication. It
// can dump the per-function aggregates (optionally to a reloadable profile
// file) and the event-file representation.
//
// Runs are interruptible and boundable: SIGINT/SIGTERM cancel the run
// cooperatively and whatever was collected is still written (exit 130);
// -timeout, -maxinstrs and -chunkbudget end the run early with a partial
// profile and exit 0. All output files are written atomically, so an
// interrupted invocation leaves either no file or a complete one.
//
// Long runs are observable: -progress logs periodic heartbeats
// (instructions/sec, shadow growth, remaining budget), -telemetry-addr
// serves live Prometheus metrics, expvar, and pprof over HTTP, and
// -log-format switches the run log between text and JSON.
//
// Usage:
//
//	sigil -workload dedup [-class simsmall] [-reuse] [-line] [-o out.profile] [-events out.evt]
//	sigil -asm prog.sasm [-input data.bin] [-timeout 30s] [-maxinstrs 1000000]
//	sigil -workload fft -progress 1s -telemetry-addr :8080
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"sigil/internal/callgrind"
	"sigil/internal/cli"
	"sigil/internal/core"
	"sigil/internal/safeio"
	"sigil/internal/trace"
	"sigil/internal/tracing"
	"sigil/internal/vm"
	"sigil/internal/workloads"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		workload = flag.String("workload", "", "bundled workload name (see -list)")
		class    = flag.String("class", "simsmall", "input class: simsmall, simmedium, simlarge")
		asmFile  = flag.String("asm", "", "assemble and profile this .sasm file instead")
		inFile   = flag.String("input", "", "file fed to the program's read syscalls (with -asm)")
		reuseM   = flag.Bool("reuse", false, "enable re-use mode (counts and lifetimes)")
		lineM    = flag.Bool("line", false, "line-granularity shadowing")
		lineSize = flag.Int("linesize", 64, "line size for -line")
		memLimit = flag.Int("memlimit", 0, "shadow-memory FIFO limit in chunks (0 = unlimited)")
		timeout  = flag.Duration("timeout", 0, "wall-clock budget for the run (0 = unlimited)")
		maxInstr = flag.Uint64("maxinstrs", 0, "retired-instruction budget (0 = unlimited)")
		chunkBud = flag.Int("chunkbudget", 0, "hard shadow-chunk budget, no eviction (0 = unlimited)")
		outProf  = flag.String("o", "", "write the profile to this file")
		outEvt   = flag.String("events", "", "write the event file to this path")
		evtRetry = flag.Int("events-retries", 0, "retry failing event-sink writes up to this many times (exponential backoff)")
		evtDegr  = flag.Bool("events-degraded", false, "never stall the run on a slow or dead event sink; drop events with exact counted loss instead")
		outCg    = flag.String("callgrind", "", "write the substrate profile in callgrind format")
		gshare   = flag.Bool("gshare", false, "use a gshare branch predictor in the substrate")
		prefetch = flag.Bool("prefetch", false, "enable the substrate's next-line prefetcher")
		top      = flag.Int("top", 15, "functions to print, by unique input bytes")
		list     = flag.Bool("list", false, "list bundled workloads and exit")
		telSnap  = flag.Bool("telemetry-dump", false, "print the final telemetry snapshot after the run")
	)
	clsWorkers := cli.RegisterClassifyWorkers(flag.CommandLine)
	tel := cli.RegisterTelemetry(flag.CommandLine, "sigil")
	flag.Parse()

	if *list {
		for _, name := range workloads.Names() {
			s, _ := workloads.Get(name)
			fmt.Printf("%-15s %s\n", name, s.Description)
		}
		return 0
	}

	stopTel, err := tel.Start()
	if err != nil {
		return fail(err)
	}
	defer stopTel()

	// Run artifacts (-run-report, -trace-out, flight dump on bad outcomes)
	// are written on every exit path, including setup failures.
	var art cli.Artifacts
	defer func() { tel.Finish(art) }()

	assemble := tel.StartSpan("assemble")
	prog, input, err := loadProgram(*workload, *class, *asmFile, *inFile)
	assemble.End()
	if err != nil {
		return fail(err)
	}

	opts := core.Options{
		TrackReuse:          *reuseM,
		LineGranularity:     *lineM,
		LineSize:            *lineSize,
		MaxShadowChunks:     *memLimit,
		MaxWall:             *timeout,
		MaxInstrs:           *maxInstr,
		MaxShadowChunksHard: *chunkBud,
		ClassifyWorkers:     *clsWorkers,
		Substrate: callgrind.Options{
			Gshare:   *gshare,
			Prefetch: *prefetch,
		},
		Telemetry: tel.Metrics(),
		Trace:     tel.TraceBuf(),
	}
	var sink *trace.FileSink
	if *outEvt != "" {
		sink, err = trace.CreateFileOptions(*outEvt, trace.WriterOptions{
			MaxRetries: *evtRetry,
			Degraded:   *evtDegr,
			Trace:      tel.NewTrack("trace-writer"),
		})
		if err != nil {
			return fail(err)
		}
		defer sink.Abort() // no-op after Commit
		opts.Events = sink
	}

	ctx, stop := cli.Context()
	defer stop()

	// core traces the run span itself when a span buffer is attached;
	// without one, keep the logged phase span so the assemble → run →
	// write → postprocess timeline stays complete in the logs.
	var runSpan *tracing.Active
	if opts.Trace == nil {
		runSpan = tel.StartSpan("run")
	}
	res, runErr := core.RunContext(ctx, prog, opts, input)
	runSpan.End()
	art.Err = runErr
	if res != nil {
		art.Telemetry = res.Telemetry
	}
	exit := 0
	if runErr != nil {
		if res == nil {
			return fail(runErr)
		}
		// The run ended early but salvaged a partial result: report why,
		// write everything that was collected, and pick the exit status
		// by cause — budgets are a bounded run working as configured,
		// interrupts exit 130 by convention, faults and panics exit 1.
		var budget *core.BudgetError
		switch {
		case errors.As(runErr, &budget):
			fmt.Fprintf(os.Stderr, "sigil: run ended early: %v (partial profile follows)\n", runErr)
		case errors.Is(runErr, context.Canceled):
			fmt.Fprintf(os.Stderr, "sigil: interrupted: %v (partial profile follows)\n", runErr)
			exit = 130
		default:
			fmt.Fprintf(os.Stderr, "sigil: run failed: %v (partial profile follows)\n", runErr)
			exit = 1
		}
	}
	write := tel.StartSpan("write")
	if sink != nil {
		commitErr := sink.Commit()
		st := sink.Stats()
		art.Sink = &st
		if err := commitErr; err != nil {
			if !*evtDegr {
				return fail(err)
			}
			// Degraded mode: the event sink dying must not cost the other
			// artifacts. The target path is untouched (Commit discards the
			// temporary file); report and keep writing the profile.
			fmt.Fprintf(os.Stderr, "sigil: event sink failed, event file not written: %v\n", err)
			exit = 1
			sink = nil
		}
	}
	if sink != nil {
		st := sink.Stats()
		if st.RawBytes > 0 {
			fmt.Printf("event file written to %s (%d events in %d frames, %.1f KiB compressed from %.1f, %d emit stalls)\n",
				*outEvt, st.Events, st.Frames,
				float64(st.CompressedBytes)/1024, float64(st.RawBytes)/1024, st.Stalls)
		} else {
			fmt.Printf("event file written to %s\n", *outEvt)
		}
		if st.Retries > 0 {
			fmt.Printf("event sink retried %d write(s)\n", st.Retries)
		}
		if st.Dropped > 0 {
			fmt.Fprintf(os.Stderr, "sigil: event sink ran degraded: %d event(s) dropped (loss recorded in file footer)\n", st.Dropped)
		}
	}
	if *outProf != "" {
		if err := core.WriteProfileFile(*outProf, res); err != nil {
			return fail(err)
		}
		fmt.Printf("profile written to %s\n", *outProf)
	}
	if *outCg != "" {
		err := safeio.WriteFile(*outCg, func(w io.Writer) error {
			return res.Profile.WriteCallgrindFormat(w)
		})
		if err != nil {
			return fail(err)
		}
		fmt.Printf("callgrind-format profile written to %s\n", *outCg)
	}
	write.End()

	post := tel.StartSpan("postprocess")
	printSummary(res, *top)
	post.End()
	if *telSnap && res.Telemetry != nil {
		fmt.Printf("\ntelemetry snapshot:\n%s", res.Telemetry.Text())
	}
	return exit
}

func loadProgram(workload, class, asmFile, inFile string) (*vm.Program, []byte, error) {
	switch {
	case workload != "" && asmFile != "":
		return nil, nil, fmt.Errorf("use either -workload or -asm, not both")
	case workload != "":
		c, err := workloads.ParseClass(class)
		if err != nil {
			return nil, nil, err
		}
		return workloads.Build(workload, c)
	case asmFile != "":
		src, err := os.ReadFile(asmFile)
		if err != nil {
			return nil, nil, err
		}
		prog, err := vm.Assemble(string(src))
		if err != nil {
			return nil, nil, err
		}
		var input []byte
		if inFile != "" {
			input, err = os.ReadFile(inFile)
			if err != nil {
				return nil, nil, err
			}
		}
		return prog, input, nil
	default:
		return nil, nil, fmt.Errorf("need -workload or -asm (try -list)")
	}
}

func printSummary(res *core.Result, top int) {
	fmt.Printf("instructions: %d   contexts: %d   shadow peak: %.1f MiB\n",
		res.Profile.TotalInstrs, len(res.Profile.Nodes),
		float64(res.Shadow.PeakBytes)/(1<<20))
	total := res.TotalCommunicated()
	fmt.Printf("bytes read: %d (unique input %d, non-unique %d, local %d)\n",
		total.TotalRead(), total.InputUnique, total.InputNonUnique,
		total.LocalUnique+total.LocalNonUnique)
	fmt.Printf("program input: %d B   syscalls: %d B in, %d B out\n\n",
		res.StartupBytes, res.KernelOutBytes, res.KernelInBytes)

	type row struct {
		name string
		c    core.CommStats
	}
	var rows []row
	for name, c := range res.CommByFunction() {
		rows = append(rows, row{name, c})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].c.InputUnique != rows[j].c.InputUnique {
			return rows[i].c.InputUnique > rows[j].c.InputUnique
		}
		return rows[i].name < rows[j].name
	})
	if top > 0 && top < len(rows) {
		rows = rows[:top]
	}
	fmt.Printf("%-32s %12s %12s %12s %12s\n", "function", "in-unique", "in-repeat", "out-unique", "local")
	for _, r := range rows {
		fmt.Printf("%-32s %12d %12d %12d %12d\n", clip(r.name, 32),
			r.c.InputUnique, r.c.InputNonUnique, r.c.OutputUnique,
			r.c.LocalUnique+r.c.LocalNonUnique)
	}

	if res.Reuse != nil {
		var agg core.ReuseStats
		for i := range res.Reuse {
			agg.Add(res.Reuse[i])
		}
		fmt.Printf("\nreuse episodes: %d (zero %d, 1-9 %d, >9 %d)\n",
			agg.Episodes, agg.ZeroReuse, agg.Low, agg.High)
	}
	if res.Lines != nil {
		fr := res.Lines.Fractions()
		fmt.Printf("\nlines touched: %d  reuse buckets <10/<100/<1k/<10k/>=10k: %.1f%% %.1f%% %.1f%% %.1f%% %.1f%%\n",
			res.Lines.TotalLines, 100*fr[0], 100*fr[1], 100*fr[2], 100*fr[3], 100*fr[4])
	}
}

func clip(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}

func fail(err error) int {
	fmt.Fprintln(os.Stderr, "sigil:", err)
	return 1
}

// Command sigil-report profiles a workload and renders one complete
// Markdown analysis: communication matrix, data-flow edges, partitioning
// candidates, re-use characterization and the critical-path study.
//
// Usage:
//
//	sigil-report -workload dedup [-class simsmall] [-o report.md] [-slots 2,4,8]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"sigil/internal/cdfg"
	"sigil/internal/cli"
	"sigil/internal/core"
	"sigil/internal/report"
	"sigil/internal/safeio"
	"sigil/internal/trace"
	"sigil/internal/workloads"
)

func main() {
	var (
		workload = flag.String("workload", "", "bundled workload name")
		class    = flag.String("class", "simsmall", "input class")
		out      = flag.String("o", "", "output file (default stdout)")
		bus      = flag.Float64("bus", 8, "SoC bus bandwidth, bytes per cycle")
		slotsArg = flag.String("slots", "2,4,8", "slot counts for the scheduling study")
		top      = flag.Int("top", 12, "rows per table")
	)
	clsWorkers := cli.RegisterClassifyWorkers(flag.CommandLine)
	tel = cli.RegisterTelemetry(flag.CommandLine, "sigil-report")
	flag.Parse()
	if *workload == "" {
		fatal(fmt.Errorf("need -workload (see `sigil -list`)"))
	}
	c, err := workloads.ParseClass(*class)
	if err != nil {
		fatal(err)
	}
	prog, input, err := workloads.Build(*workload, c)
	if err != nil {
		fatal(err)
	}

	ctx, stop := cli.Context()
	defer stop()
	stopTel, err := tel.Start()
	if err != nil {
		fatal(err)
	}
	defer stopTel()

	// One run collects aggregates + events; a second collects reuse. A
	// report needs both complete, so an interrupt aborts rather than
	// rendering from half the data.
	var buf trace.Buffer
	res, err := core.RunContext(ctx, prog, core.Options{TrackReuse: true, ClassifyWorkers: *clsWorkers, Telemetry: tel.Metrics(), Trace: tel.TraceBuf()}, input)
	if err != nil {
		fatal(err)
	}
	evRes, err := core.RunContext(ctx, prog, core.Options{Events: &buf, ClassifyWorkers: *clsWorkers, Telemetry: tel.Metrics(), Trace: tel.TraceBuf()}, input)
	if err != nil {
		fatal(err)
	}
	art.Telemetry = evRes.Telemetry
	tr := trace.FromBuffer(&buf)

	var slots []int
	for _, s := range strings.Split(*slotsArg, ",") {
		s = strings.TrimSpace(s)
		if s == "" {
			continue
		}
		n, err := strconv.Atoi(s)
		if err != nil {
			fatal(fmt.Errorf("bad slot count %q: %v", s, err))
		}
		slots = append(slots, n)
	}

	cfg := report.Config{
		Title:        fmt.Sprintf("Sigil analysis: %s (%s)", *workload, c),
		TopFunctions: *top,
		Partition:    cdfg.Config{BytesPerCycle: *bus},
		Slots:        slots,
	}
	render := tel.StartSpan("render")
	if *out != "" {
		err = safeio.WriteFile(*out, func(w io.Writer) error {
			return report.Write(w, res, tr, cfg)
		})
	} else {
		err = report.Write(os.Stdout, res, tr, cfg)
	}
	render.End()
	if err != nil {
		fatal(err)
	}
	tel.Finish(art)
}

// tel and art are package-level so fatal can flush run artifacts before
// exiting.
var (
	tel *cli.Telemetry
	art cli.Artifacts
)

func fatal(err error) {
	if tel != nil {
		art.Err = err
		tel.Finish(art)
	}
	cli.Fatal("sigil-report", err)
}

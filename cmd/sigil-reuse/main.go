// Command sigil-reuse post-processes a re-use-mode Sigil profile into the
// paper's data-reuse characterizations: the re-use count breakdown (Fig 8),
// the top re-using functions with average lifetimes (Fig 9), a per-function
// lifetime histogram (Figs 10/11), and — for line-mode profiles — the
// per-line breakdown (Fig 12).
//
// Usage:
//
//	sigil-reuse -profile out.profile [-fn conv_gen] [-top 10]
//	sigil-reuse -workload vips -fn conv_gen
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"sigil/internal/cli"
	"sigil/internal/core"
	"sigil/internal/reuse"
	"sigil/internal/workloads"
)

func main() {
	var (
		profFile = flag.String("profile", "", "re-use-mode profile file")
		workload = flag.String("workload", "", "profile this bundled workload instead")
		class    = flag.String("class", "simsmall", "input class with -workload")
		fn       = flag.String("fn", "", "print the lifetime histogram of this function")
		top      = flag.Int("top", 10, "functions to rank by reused bytes")
		lineMode = flag.Bool("line", false, "collect line-granularity re-use (with -workload)")
	)
	clsWorkers := cli.RegisterClassifyWorkers(flag.CommandLine)
	tel = cli.RegisterTelemetry(flag.CommandLine, "sigil-reuse")
	flag.Parse()
	classifyWorkers = *clsWorkers

	ctx, stop := cli.Context()
	defer stop()
	stopTel, err := tel.Start()
	if err != nil {
		fatal(err)
	}
	defer stopTel()

	load := tel.StartSpan("load")
	res, err := loadResult(ctx, *profFile, *workload, *class, *lineMode, tel)
	load.End()
	if err != nil {
		fatal(err)
	}
	if res.Telemetry != nil {
		art.Telemetry = res.Telemetry
	}
	analyze := tel.StartSpan("analyze")
	defer func() {
		analyze.End()
		tel.Finish(art)
	}()

	if res.Lines != nil {
		fr := res.Lines.Fractions()
		fmt.Printf("lines touched: %d\n", res.Lines.TotalLines)
		for i, label := range core.BucketLabels {
			fmt.Printf("  reused %-7s %6.1f%%\n", label, 100*fr[i])
		}
		return
	}

	bd, err := reuse.Analyze(res)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("episodes: %d   zero re-use: %.1f%%   1-9: %.1f%%   >9: %.1f%%\n\n",
		bd.Episodes, 100*bd.Zero, 100*bd.Low, 100*bd.High)

	funcs, err := reuse.TopFunctions(res, *top)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%-32s %14s %16s\n", "function", "reused bytes", "avg lifetime")
	for _, f := range funcs {
		fmt.Printf("%-32s %14d %16.1f\n", f.Name, f.ReusedBytes, f.AvgLifetime)
	}

	if *fn != "" {
		hist, err := reuse.LifetimeHistogram(res, *fn)
		if err != nil {
			fatal(err)
		}
		sh := reuse.Shape(hist)
		fmt.Printf("\n%s lifetime histogram (bin = %d instrs; peak bin %d, tail bin %d):\n",
			*fn, core.LifetimeBin, sh.PeakBin, sh.TailBin)
		for bin, v := range hist {
			if v == 0 {
				continue
			}
			bar := 1
			for x := v; x >= 10; x /= 10 {
				bar++
			}
			fmt.Printf("%9d %-10d %s\n", bin*core.LifetimeBin, v, strings.Repeat("*", bar))
		}
	}
}

func loadResult(ctx context.Context, profFile, workload, class string, lineMode bool, tel *cli.Telemetry) (*core.Result, error) {
	switch {
	case profFile != "" && workload != "":
		return nil, fmt.Errorf("use either -profile or -workload")
	case profFile != "":
		f, err := os.Open(profFile)
		if err != nil {
			return nil, err
		}
		r, err := core.ReadProfile(f)
		if cerr := f.Close(); err == nil && cerr != nil {
			err = cerr
		}
		if err != nil {
			return nil, err
		}
		return r, nil
	case workload != "":
		c, err := workloads.ParseClass(class)
		if err != nil {
			return nil, err
		}
		prog, input, err := workloads.Build(workload, c)
		if err != nil {
			return nil, err
		}
		return core.RunContext(ctx, prog, core.Options{TrackReuse: !lineMode, LineGranularity: lineMode, ClassifyWorkers: classifyWorkers, Telemetry: tel.Metrics(), Trace: tel.TraceBuf()}, input)
	default:
		return nil, fmt.Errorf("need -profile or -workload")
	}
}

// tel and art are package-level so fatal can flush run artifacts before
// exiting; classifyWorkers carries the -classify-workers flag into
// loadResult's -workload run.
var (
	tel             *cli.Telemetry
	art             cli.Artifacts
	classifyWorkers int
)

func fatal(err error) {
	if tel != nil {
		art.Err = err
		tel.Finish(art)
	}
	cli.Fatal("sigil-reuse", err)
}

// Command experiments regenerates every table and figure of the paper's
// evaluation section and prints them as text tables.
//
// Usage:
//
//	experiments [-only fig7] [-reps 3]
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"sigil/internal/cli"
	"sigil/internal/experiments"
)

func main() {
	only := flag.String("only", "", "run a single experiment: table1, fig4..fig13, table2, table3, telemetry, chains, eventfile, shardscale")
	reps := flag.Int("reps", 3, "timing repetitions (median reported)")
	par := flag.Int("p", runtime.GOMAXPROCS(0), "parallel workers for profile/trace generation (timings always run sequentially; live telemetry attaches to runs only with -p=1)")
	clsWorkers := cli.RegisterClassifyWorkers(flag.CommandLine)
	tel := cli.RegisterTelemetry(flag.CommandLine, "experiments")
	flag.Parse()

	ctx, stop := cli.Context()
	defer stop()
	stopTel, err := tel.Start()
	if err != nil {
		cli.Fatal("experiments", err)
	}
	defer stopTel()

	s := experiments.NewSuite()
	s.TimingReps = *reps
	s.Workers = *par
	s.ClassifyWorkers = *clsWorkers
	s.Ctx = ctx
	s.Telemetry = tel.Metrics()
	// Unlike the shared metrics gauges, the tracer is safe at any -p:
	// every profiling run records into its own track.
	s.Tracer = tel.Recorder()

	finish := func(err error) {
		art := cli.Artifacts{Err: err}
		if m := tel.Metrics(); m != nil {
			snap := m.Snapshot()
			art.Telemetry = &snap
		}
		tel.Finish(art)
	}
	fail := func(err error) {
		finish(err)
		os.Exit(cli.ExitCode(err))
	}
	defer finish(nil)
	run := func(name string, f func() (string, error)) {
		if *only != "" && !strings.EqualFold(*only, name) {
			return
		}
		out, err := f()
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", name, err)
			fail(err)
		}
		fmt.Println(out)
	}

	if *only == "" {
		// Generate the profile/trace matrix on all workers up front; the
		// figures then render from cache (timings still measure
		// sequentially for wall-clock fidelity).
		if err := s.Prewarm(); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: prewarm: %v\n", err)
			fail(err)
		}
		out, err := s.RenderAll()
		fmt.Print(out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			fail(err)
		}
		chains, err := s.CriticalPathChains()
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			fail(err)
		}
		fmt.Print(experiments.RenderChains(chains, "§IV-C chain"))
		return
	}

	run("table1", func() (string, error) { return experiments.TableI().Render(), nil })
	run("fig4", func() (string, error) { r, err := s.Figure4(); return render(r, err) })
	run("fig5", func() (string, error) { r, err := s.Figure5(); return render(r, err) })
	run("fig6", func() (string, error) { r, err := s.Figure6(); return render(r, err) })
	run("fig7", func() (string, error) { r, err := s.Figure7(); return render(r, err) })
	run("table2", func() (string, error) { r, err := s.TableII(5); return render(r, err) })
	run("table3", func() (string, error) { r, err := s.TableIII(5); return render(r, err) })
	run("fig8", func() (string, error) { r, err := s.Figure8(); return render(r, err) })
	run("fig9", func() (string, error) { r, err := s.Figure9(8); return render(r, err) })
	run("fig10", func() (string, error) { r, err := s.Figure10(); return render(r, err) })
	run("fig11", func() (string, error) { r, err := s.Figure11(); return render(r, err) })
	run("fig12", func() (string, error) { r, err := s.Figure12(); return render(r, err) })
	run("fig13", func() (string, error) { r, err := s.Figure13(); return render(r, err) })
	run("telemetry", func() (string, error) { r, err := s.RunTelemetry(); return render(r, err) })
	run("schedule", func() (string, error) {
		r, err := s.ScheduleCurve([]int{2, 4, 8, 16})
		return render(r, err)
	})
	run("commaware", func() (string, error) {
		r, err := s.CommAwareCurve(0.25)
		return render(r, err)
	})
	run("memlimit", func() (string, error) {
		r, err := s.MemoryLimitAccuracy("dedup", 12)
		return render(r, err)
	})
	run("offload", func() (string, error) {
		r, err := s.OffloadStudy(10)
		return render(r, err)
	})
	run("shardscale", func() (string, error) {
		r, err := s.ShardScale(nil, nil)
		return render(r, err)
	})
	run("eventfile", func() (string, error) {
		r, err := s.EventFileStats()
		return render(r, err)
	})
	run("chains", func() (string, error) {
		chains, err := s.CriticalPathChains()
		if err != nil {
			return "", err
		}
		return experiments.RenderChains(chains, ""), nil
	})
}

func render(r interface{ Render() string }, err error) (string, error) {
	if err != nil {
		return "", err
	}
	return r.Render(), nil
}

// Command sigil-critpath post-processes a Sigil event file into dependency
// chains: the critical path, its function chain, and the maximum
// theoretical function-level parallelism (the paper's Fig 13 metric).
//
// Usage:
//
//	sigil-critpath -events out.evt
//	sigil-critpath -workload streamcluster
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"

	"sigil/internal/cli"
	"sigil/internal/core"
	"sigil/internal/critpath"
	"sigil/internal/trace"
	"sigil/internal/tracing"
	"sigil/internal/workloads"
)

func main() {
	var (
		evtFile  = flag.String("events", "", "event file written by `sigil -events`")
		workload = flag.String("workload", "", "trace this bundled workload instead")
		class    = flag.String("class", "simsmall", "input class with -workload")
		commCost = flag.Float64("opsperbyte", 0, "charge data edges at this many ops per byte")
		slots    = flag.String("slots", "", "comma-separated slot counts to schedule onto (e.g. 2,4,8)")
		salvage  = flag.Bool("salvage", false, "recover the valid prefix of a truncated/corrupt event file")
		workers  = flag.Int("decode-workers", 0, "frame-decode goroutines for v3 event files (0 = one per CPU)")
	)
	clsWorkers := cli.RegisterClassifyWorkers(flag.CommandLine)
	tel = cli.RegisterTelemetry(flag.CommandLine, "sigil-critpath")
	flag.Parse()
	classifyWorkers = *clsWorkers

	ctx, stop := cli.Context()
	defer stop()
	stopTel, err := tel.Start()
	if err != nil {
		fatal(err)
	}
	defer stopTel()

	load := tel.StartSpan("load")
	tr, err := loadTrace(ctx, *evtFile, *workload, *class, *salvage, *workers, tel)
	load.End()
	if err != nil {
		fatal(err)
	}
	analyze := tel.StartSpan("analyze")
	a, err := critpath.AnalyzeWithComm(tr, critpath.CommConfig{OpsPerByte: *commCost})
	analyze.End()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("serial length:      %d ops\n", a.SerialOps)
	fmt.Printf("critical path:      %d ops over %d segments", a.CriticalOps, a.Segments)
	if *commCost > 0 {
		fmt.Printf(" (communication charged at %.2f ops/byte)", *commCost)
	}
	fmt.Println()
	fmt.Printf("max parallelism:    %.2f\n", a.Parallelism())
	if len(a.Chain) > 0 {
		leafToMain := make([]string, len(a.Chain))
		for i, fn := range a.Chain {
			leafToMain[len(a.Chain)-1-i] = fn
		}
		fmt.Printf("critical chain:     %s\n", strings.Join(leafToMain, " -> "))
	}
	if *slots != "" {
		sched := tel.StartSpan("schedule")
		fmt.Println("\nschedule onto bounded slots:")
		fmt.Printf("  %-6s %12s %10s %12s %14s\n", "slots", "makespan", "speedup", "utilization", "cross-slot B")
		for _, s := range strings.Split(*slots, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil {
				fatal(fmt.Errorf("bad slot count %q: %v", s, err))
			}
			r, err := critpath.Schedule(tr, n)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("  %-6d %12d %10.2f %12.2f %14d\n",
				n, r.Makespan, r.Speedup(), r.Utilization(), r.CrossSlotBytes)
		}
		sched.End()
	}
	tel.Finish(art)
}

func loadTrace(ctx context.Context, evtFile, workload, class string, salvage bool, workers int, tel *cli.Telemetry) (*trace.Trace, error) {
	switch {
	case evtFile != "" && workload != "":
		return nil, fmt.Errorf("use either -events or -workload")
	case evtFile != "":
		f, err := os.Open(evtFile)
		if err != nil {
			return nil, err
		}
		tr, err := readEventFile(f, salvage, workers)
		if cerr := f.Close(); err == nil && cerr != nil {
			err = cerr
		}
		if err != nil {
			return nil, err
		}
		return tr, nil
	case workload != "":
		c, err := workloads.ParseClass(class)
		if err != nil {
			return nil, err
		}
		prog, input, err := workloads.Build(workload, c)
		if err != nil {
			return nil, err
		}
		var buf trace.Buffer
		opts := core.Options{Events: &buf, ClassifyWorkers: classifyWorkers, Telemetry: tel.Metrics(), Trace: tel.TraceBuf()}
		res, err := core.RunContext(ctx, prog, opts, input)
		if err != nil {
			return nil, err
		}
		art.Telemetry = res.Telemetry
		return trace.FromBuffer(&buf), nil
	default:
		return nil, fmt.Errorf("need -events or -workload")
	}
}

// readEventFile decodes an event file, either salvaging a damaged one or
// fanning the frame decode out across workers.
func readEventFile(f *os.File, salvage bool, workers int) (*trace.Trace, error) {
	if salvage {
		tr, rep, err := trace.Salvage(f)
		if err != nil {
			return nil, err
		}
		art.Salvage = &tracing.SalvageInfo{
			Complete:          rep.Complete,
			Truncated:         rep.Truncated,
			Events:            uint64(rep.Events),
			EventsDropped:     rep.EventsDropped,
			FramesQuarantined: rep.FramesQuarantined,
			BytesRead:         uint64(rep.BytesValid),
			BytesDropped:      uint64(rep.BytesTotal - rep.BytesValid),
		}
		fmt.Fprintf(os.Stderr, "sigil-critpath: %s\n", rep)
		// A quarantined mid-stream frame leaves a gap: surviving events can
		// reference calls whose Enter fell in the hole. Drop those so the
		// analyzer sees a consistent (truncation-shaped) stream.
		if pruned := tr.PruneDanglingCalls(); pruned > 0 {
			fmt.Fprintf(os.Stderr, "sigil-critpath: dropped %d event(s) referencing calls lost in quarantined frames\n", pruned)
		}
		return tr, nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	tr, err := trace.ReadAllWorkers(f, workers)
	if errors.Is(err, trace.ErrTruncated) || errors.Is(err, trace.ErrCorrupt) {
		return nil, fmt.Errorf("%w (rerun with -salvage to recover the valid prefix)", err)
	}
	return tr, err
}

// tel and art are package-level so fatal can flush run artifacts (report,
// trace, flight dump) on every exit path; classifyWorkers carries the
// -classify-workers flag into loadTrace's -workload run.
var (
	tel             *cli.Telemetry
	art             cli.Artifacts
	classifyWorkers int
)

func fatal(err error) {
	if tel != nil {
		art.Err = err
		tel.Finish(art)
	}
	cli.Fatal("sigil-critpath", err)
}

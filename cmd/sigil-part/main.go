// Command sigil-part post-processes a Sigil profile into the paper's HW/SW
// partitioning outputs: the trimmed control data flow graph, the ranked
// acceleration candidates with their breakeven speedups (Tables II/III),
// the coverage split (Fig 7), and optionally a Graphviz rendering.
//
// Usage:
//
//	sigil-part -profile out.profile [-bus 8] [-top 5] [-dot cdfg.dot]
//	sigil-part -workload canneal
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"math"
	"os"

	"sigil/internal/cdfg"
	"sigil/internal/cli"
	"sigil/internal/core"
	"sigil/internal/safeio"
	"sigil/internal/workloads"
)

func main() {
	var (
		profFile = flag.String("profile", "", "profile file written by `sigil -o`")
		workload = flag.String("workload", "", "profile this bundled workload instead")
		class    = flag.String("class", "simsmall", "input class with -workload")
		bus      = flag.Float64("bus", 8, "SoC bus bandwidth in bytes per cycle")
		maxBE    = flag.Float64("maxbreakeven", 0, "candidate viability cutoff (0 = any finite)")
		top      = flag.Int("top", 5, "candidates to list from each end")
		dotFile  = flag.String("dot", "", "write the CDFG in Graphviz format")
		offload  = flag.Float64("offload", 0, "estimate app speedup assuming this accelerator speedup (0 = skip)")
		accels   = flag.Int("accelerators", 0, "accelerator budget for -offload (0 = unlimited)")
	)
	clsWorkers := cli.RegisterClassifyWorkers(flag.CommandLine)
	tel = cli.RegisterTelemetry(flag.CommandLine, "sigil-part")
	flag.Parse()
	classifyWorkers = *clsWorkers

	ctx, stop := cli.Context()
	defer stop()
	stopTel, err := tel.Start()
	if err != nil {
		fatal(err)
	}
	defer stopTel()

	load := tel.StartSpan("load")
	res, err := loadResult(ctx, *profFile, *workload, *class, tel)
	load.End()
	if err != nil {
		fatal(err)
	}
	if res.Telemetry != nil {
		art.Telemetry = res.Telemetry
	}
	partition := tel.StartSpan("partition")
	defer func() {
		partition.End()
		tel.Finish(art)
	}()
	g, err := cdfg.Build(res, cdfg.Config{BytesPerCycle: *bus, MaxBreakeven: *maxBE})
	if err != nil {
		fatal(err)
	}
	tr := g.Trim()

	fmt.Printf("contexts: %d   total estimated cycles: %d\n", len(g.Nodes), tr.TotalCycles)
	fmt.Printf("coverage of candidate leaves: %.1f%% (%d candidates)\n\n",
		100*tr.Coverage(), len(tr.Candidates))

	fmt.Println("best candidates (lowest breakeven speedup):")
	printCands(tr.TopByBreakeven(*top))
	fmt.Println("\nworst candidates:")
	printCands(tr.BottomByBreakeven(*top))

	if *offload > 0 {
		est, err := tr.EstimateOffload(cdfg.OffloadConfig{Speedup: *offload, MaxAccelerators: *accels})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("\noffload model (assumed %gx accelerators):\n", *offload)
		fmt.Printf("  baseline %d cycles -> %.0f cycles: app speedup %.2fx with %d accelerators\n",
			est.BaselineCycles, est.AcceleratedCycles, est.AppSpeedup, len(est.Selected))
		for _, g := range est.Selected {
			fmt.Printf("  %-40s gain %.0f cycles (sw %d, offloaded %.0f)\n",
				clip(g.Path, 40), g.Gain, g.SwCycles, g.AccelCycles)
		}
	}

	if *dotFile != "" {
		err := safeio.WriteFile(*dotFile, func(w io.Writer) error {
			return g.WriteDOT(w, tr)
		})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("\nCDFG written to %s\n", *dotFile)
	}
}

func printCands(cands []cdfg.Candidate) {
	fmt.Printf("  %-40s %12s %14s %10s %10s\n", "context", "S(breakeven)", "incl cycles", "ext in B", "ext out B")
	for _, c := range cands {
		be := fmt.Sprintf("%.3f", c.Breakeven)
		if math.IsInf(c.Breakeven, 1) {
			be = "inf"
		}
		fmt.Printf("  %-40s %12s %14d %10d %10d\n", clip(c.Path, 40), be,
			c.InclCycles, c.ExtIn, c.ExtOut)
	}
}

func loadResult(ctx context.Context, profFile, workload, class string, tel *cli.Telemetry) (*core.Result, error) {
	switch {
	case profFile != "" && workload != "":
		return nil, fmt.Errorf("use either -profile or -workload")
	case profFile != "":
		f, err := os.Open(profFile)
		if err != nil {
			return nil, err
		}
		r, err := core.ReadProfile(f)
		if cerr := f.Close(); err == nil && cerr != nil {
			err = cerr
		}
		if err != nil {
			return nil, err
		}
		return r, nil
	case workload != "":
		c, err := workloads.ParseClass(class)
		if err != nil {
			return nil, err
		}
		prog, input, err := workloads.Build(workload, c)
		if err != nil {
			return nil, err
		}
		return core.RunContext(ctx, prog, core.Options{ClassifyWorkers: classifyWorkers, Telemetry: tel.Metrics(), Trace: tel.TraceBuf()}, input)
	default:
		return nil, fmt.Errorf("need -profile or -workload")
	}
}

func clip(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return "…" + s[len(s)-n+1:]
}

// tel and art are package-level so fatal can flush run artifacts before
// exiting; classifyWorkers carries the -classify-workers flag into
// loadResult's -workload run.
var (
	tel             *cli.Telemetry
	art             cli.Artifacts
	classifyWorkers int
)

func fatal(err error) {
	if tel != nil {
		art.Err = err
		tel.Finish(art)
	}
	cli.Fatal("sigil-part", err)
}

// Command sigil-lint runs sigil's project-specific analyzer suite — the
// invariants past PRs fixed by hand, enforced mechanically:
//
//	panicfree    no panic in internal/core, internal/trace, internal/vm
//	atomicfield  sync/atomic fields accessed atomically, owning structs never copied
//	sinkerr      Close/Flush/Sync/Emit errors on sinks and files checked
//	exposition   every telemetry.Metrics counter wired through Snapshot + Prometheus
//	detorder     no map-ordered iteration feeding rendered output
//
// Usage:
//
//	sigil-lint [-json] [-list] [-run name,name] [packages]
//
// Packages default to ./... relative to the current directory. Exit status
// is 0 when the tree is clean, 1 when findings were reported, 2 on a
// usage or load error. Findings can be suppressed at a documented
// boundary with a trailing `//sigil:lint-allow <analyzer> <reason>`
// comment (or on the line directly above).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"sigil/internal/lint"
	"sigil/internal/lint/analysis"
	"sigil/internal/lint/loader"
)

func main() {
	os.Exit(run())
}

func run() int {
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array on stdout")
	list := flag.Bool("list", false, "list the analyzers and exit")
	only := flag.String("run", "", "comma-separated analyzer names to run (default: all)")
	flag.Parse()

	if *list {
		for _, a := range lint.All {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	analyzers := lint.All
	if *only != "" {
		byName := map[string]*analysis.Analyzer{}
		for _, a := range lint.All {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "sigil-lint: unknown analyzer %q (try -list)\n", name)
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := loader.Load(".", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sigil-lint: %v\n", err)
		return 2
	}
	findings, err := lint.Apply(pkgs, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sigil-lint: %v\n", err)
		return 2
	}

	// Report paths relative to the working directory: shorter, clickable,
	// and stable across checkouts (the JSON output feeds CI annotations).
	if wd, err := os.Getwd(); err == nil {
		for i := range findings {
			if rel, err := filepath.Rel(wd, findings[i].File); err == nil && !strings.HasPrefix(rel, "..") {
				findings[i].File = rel
			}
		}
	}

	if *jsonOut {
		if findings == nil {
			findings = []lint.Finding{}
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintf(os.Stderr, "sigil-lint: %v\n", err)
			return 2
		}
	} else {
		for _, f := range findings {
			fmt.Println(f)
		}
	}
	if len(findings) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "sigil-lint: %d finding(s)\n", len(findings))
		}
		return 1
	}
	return 0
}

// Command sigil-lint runs sigil's project-specific analyzer suite — the
// invariants past PRs fixed by hand, enforced mechanically:
//
//	atomicfield  sync/atomic fields accessed atomically, owning structs never copied
//	detorder     no map-ordered iteration feeding rendered output
//	exposition   every telemetry.Metrics counter wired through Snapshot + Prometheus
//	goleak       every go statement has a reachable join or cancel
//	hotalloc     //sigil:hot functions stay allocation-free
//	panicfree    no panic in internal/core, internal/trace, internal/vm
//	shardown     //sigil:owner fields touched only by their //sigil:goroutine role
//	sinkerr      Close/Flush/Sync/Emit errors on sinks and files checked
//
// Usage:
//
//	sigil-lint [-json] [-list] [-run name,name] [packages]
//	sigil-lint -vm [-json] program.sasm...
//
// Packages default to ./... relative to the current directory. With -vm the
// arguments are VM assembly files; each is assembled and checked by the
// static program verifier, and its typed diagnostics (jump targets,
// fall-off, unreachable code, no-return loops, wild memory operands) are
// reported in the same text or JSON shape as Go findings.
//
// Exit status is 0 when the tree is clean, 1 when findings were reported,
// 2 on a usage or load error. Go findings can be suppressed at a
// documented boundary with a trailing `//sigil:lint-allow <analyzer>
// <reason>` comment (or on the line directly above).
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"sigil/internal/lint"
	"sigil/internal/lint/analysis"
	"sigil/internal/lint/loader"
	"sigil/internal/vm"
)

func main() {
	os.Exit(run())
}

func run() int {
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array on stdout")
	list := flag.Bool("list", false, "list the analyzers and exit")
	only := flag.String("run", "", "comma-separated analyzer names to run (default: all)")
	vmMode := flag.Bool("vm", false, "statically verify VM assembly files instead of linting Go packages")
	flag.Parse()

	if *list {
		sorted := make([]*analysis.Analyzer, len(lint.All))
		copy(sorted, lint.All)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i].Name < sorted[j].Name })
		for _, a := range sorted {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	if *vmMode {
		return runVM(flag.Args(), *jsonOut)
	}

	analyzers := lint.All
	if *only != "" {
		byName := map[string]*analysis.Analyzer{}
		for _, a := range lint.All {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "sigil-lint: unknown analyzer %q (try -list)\n", name)
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := loader.Load(".", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sigil-lint: %v\n", err)
		return 2
	}
	findings, err := lint.Apply(pkgs, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sigil-lint: %v\n", err)
		return 2
	}

	// Report paths relative to the working directory: shorter, clickable,
	// and stable across checkouts (the JSON output feeds CI annotations).
	if wd, err := os.Getwd(); err == nil {
		for i := range findings {
			if rel, err := filepath.Rel(wd, findings[i].File); err == nil && !strings.HasPrefix(rel, "..") {
				findings[i].File = rel
			}
		}
	}

	if *jsonOut {
		if findings == nil {
			findings = []lint.Finding{}
		}
		if err := emitJSON(findings); err != nil {
			fmt.Fprintf(os.Stderr, "sigil-lint: %v\n", err)
			return 2
		}
	} else {
		for _, f := range findings {
			fmt.Println(f)
		}
	}
	if len(findings) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "sigil-lint: %d finding(s)\n", len(findings))
		}
		return 1
	}
	return 0
}

// vmFinding is one verifier diagnostic in output form, mirroring
// lint.Finding's JSON shape with the VM-specific location fields.
type vmFinding struct {
	File    string `json:"file"`
	Class   string `json:"class"`
	Func    string `json:"func"`
	PC      int    `json:"pc"`
	Op      string `json:"op,omitempty"`
	Message string `json:"message"`
}

func (f vmFinding) String() string {
	loc := f.Func
	if f.PC >= 0 {
		loc = fmt.Sprintf("%s+%d (%s)", f.Func, f.PC, f.Op)
	}
	return fmt.Sprintf("%s: [vm-%s] %s: %s", f.File, f.Class, loc, f.Message)
}

// runVM assembles each file and reports the static verifier's typed
// diagnostics. Syntax errors are load errors (exit 2); verifier rejections
// are findings (exit 1).
func runVM(files []string, jsonOut bool) int {
	if len(files) == 0 {
		fmt.Fprintln(os.Stderr, "sigil-lint: -vm needs at least one assembly file")
		return 2
	}
	findings := []vmFinding{}
	for _, file := range files {
		src, err := os.ReadFile(file)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sigil-lint: %v\n", err)
			return 2
		}
		_, err = vm.Assemble(string(src))
		if err == nil {
			continue
		}
		var ve *vm.VerifyError
		if !errors.As(err, &ve) {
			fmt.Fprintf(os.Stderr, "sigil-lint: %s: %v\n", file, err)
			return 2
		}
		for _, d := range ve.Diags {
			f := vmFinding{
				File:    file,
				Class:   d.Class.String(),
				Func:    d.Func,
				PC:      d.PC,
				Message: d.Message,
			}
			if d.PC >= 0 {
				f.Op = d.Op.String()
			}
			findings = append(findings, f)
		}
	}
	if jsonOut {
		if err := emitJSON(findings); err != nil {
			fmt.Fprintf(os.Stderr, "sigil-lint: %v\n", err)
			return 2
		}
	} else {
		for _, f := range findings {
			fmt.Println(f)
		}
	}
	if len(findings) > 0 {
		if !jsonOut {
			fmt.Fprintf(os.Stderr, "sigil-lint: %d finding(s)\n", len(findings))
		}
		return 1
	}
	return 0
}

func emitJSON(v any) error {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

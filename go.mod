module sigil

go 1.22

package sigil

// The benchmark harness regenerates every table and figure of the paper's
// evaluation (run with `go test -bench=. -benchmem`). Experiment results
// are computed once per process and cached in a shared suite, so each
// BenchmarkTable*/BenchmarkFigure* bench measures regeneration of its
// experiment's rows; the BenchmarkOverhead* and BenchmarkAblation* benches
// measure the raw profiling costs themselves (the quantities behind
// Figs 4-6) and the design-choice ablations called out in DESIGN.md.

import (
	"fmt"
	"sync"
	"testing"

	"sigil/internal/core"
	"sigil/internal/dbi"
	"sigil/internal/experiments"
	"sigil/internal/telemetry"
	"sigil/internal/trace"
	"sigil/internal/tracing"
	"sigil/internal/workloads"
)

var (
	suiteOnce  sync.Once
	benchSuite *experiments.Suite
	benchSink  string
)

func sharedSuite() *experiments.Suite {
	suiteOnce.Do(func() {
		benchSuite = experiments.NewSuite()
		benchSuite.TimingReps = 1 // benches re-run; one rep per call is enough
	})
	return benchSuite
}

func benchExperiment(b *testing.B, f func() (interface{ Render() string }, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		r, err := f()
		if err != nil {
			b.Fatal(err)
		}
		benchSink = r.Render()
	}
	if benchSink == "" {
		b.Fatal("empty rendering")
	}
}

// BenchmarkTableI regenerates Table I (shadow object contents).
func BenchmarkTableI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		benchSink = experiments.TableI().Render()
	}
}

// BenchmarkFigure4 regenerates Fig 4 (Sigil and Callgrind slowdown vs native).
func BenchmarkFigure4(b *testing.B) {
	s := sharedSuite()
	benchExperiment(b, func() (interface{ Render() string }, error) { return s.Figure4() })
}

// BenchmarkFigure5 regenerates Fig 5 (Sigil slowdown vs Callgrind, two input sizes).
func BenchmarkFigure5(b *testing.B) {
	s := sharedSuite()
	benchExperiment(b, func() (interface{ Render() string }, error) { return s.Figure5() })
}

// BenchmarkFigure6 regenerates Fig 6 (profiling memory usage).
func BenchmarkFigure6(b *testing.B) {
	s := sharedSuite()
	benchExperiment(b, func() (interface{ Render() string }, error) { return s.Figure6() })
}

// BenchmarkFigure7 regenerates Fig 7 (trimmed-calltree coverage).
func BenchmarkFigure7(b *testing.B) {
	s := sharedSuite()
	benchExperiment(b, func() (interface{ Render() string }, error) { return s.Figure7() })
}

// BenchmarkTableII regenerates Table II (best candidates by breakeven).
func BenchmarkTableII(b *testing.B) {
	s := sharedSuite()
	benchExperiment(b, func() (interface{ Render() string }, error) { return s.TableII(5) })
}

// BenchmarkTableIII regenerates Table III (worst candidates).
func BenchmarkTableIII(b *testing.B) {
	s := sharedSuite()
	benchExperiment(b, func() (interface{ Render() string }, error) { return s.TableIII(5) })
}

// BenchmarkFigure8 regenerates Fig 8 (re-use count breakdown).
func BenchmarkFigure8(b *testing.B) {
	s := sharedSuite()
	benchExperiment(b, func() (interface{ Render() string }, error) { return s.Figure8() })
}

// BenchmarkFigure9 regenerates Fig 9 (top vips functions' re-use lifetimes).
func BenchmarkFigure9(b *testing.B) {
	s := sharedSuite()
	benchExperiment(b, func() (interface{ Render() string }, error) { return s.Figure9(8) })
}

// BenchmarkFigure10 regenerates Fig 10 (conv_gen lifetime distribution).
func BenchmarkFigure10(b *testing.B) {
	s := sharedSuite()
	benchExperiment(b, func() (interface{ Render() string }, error) { return s.Figure10() })
}

// BenchmarkFigure11 regenerates Fig 11 (imb_XYZ2Lab lifetime distribution).
func BenchmarkFigure11(b *testing.B) {
	s := sharedSuite()
	benchExperiment(b, func() (interface{ Render() string }, error) { return s.Figure11() })
}

// BenchmarkFigure12 regenerates Fig 12 (line-granularity re-use breakdown).
func BenchmarkFigure12(b *testing.B) {
	s := sharedSuite()
	benchExperiment(b, func() (interface{ Render() string }, error) { return s.Figure12() })
}

// BenchmarkFigure13 regenerates Fig 13 (function-level parallelism bounds).
func BenchmarkFigure13(b *testing.B) {
	s := sharedSuite()
	benchExperiment(b, func() (interface{ Render() string }, error) { return s.Figure13() })
}

// --- raw overhead benches (the measurements behind Figs 4-6) ---

// overheadWorkloads is a representative spread: fp-heavy, int/streaming,
// pointer-chasing, and the big-footprint outlier.
var overheadWorkloads = []string{"blackscholes", "canneal", "vips", "dedup"}

func benchRun(b *testing.B, name string, mk func() dbi.Tool) {
	b.Helper()
	prog, input, err := workloads.Build(name, workloads.SimSmall)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dbi.Run(prog, mk(), input); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOverheadNative measures uninstrumented execution.
func BenchmarkOverheadNative(b *testing.B) {
	for _, name := range overheadWorkloads {
		b.Run(name, func(b *testing.B) {
			benchRun(b, name, func() dbi.Tool { return nil })
		})
	}
}

// BenchmarkOverheadCallgrind measures the substrate tool alone.
func BenchmarkOverheadCallgrind(b *testing.B) {
	for _, name := range overheadWorkloads {
		b.Run(name, func(b *testing.B) {
			benchRun(b, name, func() dbi.Tool {
				return mustSub()
			})
		})
	}
}

// BenchmarkOverheadSigil measures the full Sigil stack (baseline mode).
func BenchmarkOverheadSigil(b *testing.B) {
	for _, name := range overheadWorkloads {
		b.Run(name, func(b *testing.B) {
			benchRun(b, name, func() dbi.Tool {
				sub := mustSub()
				return dbi.Chain{sub, mustCore(sub, core.Options{})}
			})
		})
	}
}

// BenchmarkOverheadSigilSharded measures the full Sigil stack with
// classification pipelined onto 4 shard workers off the interpreter thread.
// On multi-core hosts the interpreter overlaps with classification; on a
// single hardware thread this bounds the pipeline's bookkeeping overhead.
func BenchmarkOverheadSigilSharded(b *testing.B) {
	for _, name := range overheadWorkloads {
		b.Run(name, func(b *testing.B) {
			benchRun(b, name, func() dbi.Tool {
				sub := mustSub()
				return dbi.Chain{sub, mustCore(sub, core.Options{ClassifyWorkers: 4})}
			})
		})
	}
}

// --- ablations (design choices called out in DESIGN.md) ---

// BenchmarkAblationReuseMode measures the cost of re-use tracking on top of
// baseline shadowing (the paper's "up to 2x memory" mode).
func BenchmarkAblationReuseMode(b *testing.B) {
	for _, track := range []bool{false, true} {
		b.Run(fmt.Sprintf("reuse=%v", track), func(b *testing.B) {
			benchRun(b, "vips", func() dbi.Tool {
				sub := mustSub()
				return dbi.Chain{sub, mustCore(sub, core.Options{TrackReuse: track})}
			})
		})
	}
}

// BenchmarkAblationGranularity compares byte- vs line-granularity shadowing.
func BenchmarkAblationGranularity(b *testing.B) {
	for _, line := range []bool{false, true} {
		b.Run(fmt.Sprintf("line=%v", line), func(b *testing.B) {
			benchRun(b, "raytrace", func() dbi.Tool {
				sub := mustSub()
				return dbi.Chain{sub, mustCore(sub, core.Options{LineGranularity: line})}
			})
		})
	}
}

// BenchmarkAblationShadowLimit measures the FIFO memory limit's overhead on
// dedup (the one workload the paper needed it for). dedup/simsmall touches
// ~22 chunks unlimited, so the non-zero limits below genuinely evict.
func BenchmarkAblationShadowLimit(b *testing.B) {
	for _, limit := range []int{0, 16, 8, 4} {
		b.Run(fmt.Sprintf("chunks=%d", limit), func(b *testing.B) {
			benchRun(b, "dedup", func() dbi.Tool {
				sub := mustSub()
				return dbi.Chain{sub, mustCore(sub, core.Options{MaxShadowChunks: limit})}
			})
		})
	}
}

// BenchmarkAblationTelemetry measures the live-metrics sampler on top of
// profiling: the full core.Run path with and without a Metrics block on
// Options, so the per-poll sampleInto cost (and final-snapshot cost) is the
// only difference. The acceptance bar is ≤3% on fft.
func BenchmarkAblationTelemetry(b *testing.B) {
	for _, sampled := range []bool{false, true} {
		b.Run(fmt.Sprintf("telemetry=%v", sampled), func(b *testing.B) {
			prog, input, err := workloads.Build("fft", workloads.SimSmall)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				opts := core.Options{}
				if sampled {
					opts.Telemetry = &telemetry.Metrics{}
				}
				if _, err := core.Run(prog, opts, input); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationTracing measures the run-tracing subsystem on top of
// profiling: the full core.Run path with and without a span buffer on
// Options, so the span bookkeeping, the per-poll sample+flight recording,
// and the private metrics block a traced run attaches are the only
// difference. The acceptance bar is ≤3% on fft (scripts/bench.sh gates it).
func BenchmarkAblationTracing(b *testing.B) {
	for _, traced := range []bool{false, true} {
		b.Run(fmt.Sprintf("tracing=%v", traced), func(b *testing.B) {
			prog, input, err := workloads.Build("fft", workloads.SimSmall)
			if err != nil {
				b.Fatal(err)
			}
			rec := tracing.NewRecorder()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				opts := core.Options{}
				if traced {
					// A fresh per-iteration buffer, like each run of a
					// tool gets; the recorder is shared, as in a process.
					opts.Trace = rec.Local("bench")
				}
				if _, err := core.Run(prog, opts, input); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationEvents measures event-file emission on top of profiling.
func BenchmarkAblationEvents(b *testing.B) {
	for _, events := range []bool{false, true} {
		b.Run(fmt.Sprintf("events=%v", events), func(b *testing.B) {
			benchRun(b, "streamcluster", func() dbi.Tool {
				opts := core.Options{}
				if events {
					opts.Events = &trace.Buffer{}
				}
				sub := mustSub()
				return dbi.Chain{sub, mustCore(sub, opts)}
			})
		})
	}
}

// BenchmarkOffloadModel measures the extension offload study (application
// speedups under assumed accelerators, cmd/experiments -only offload).
func BenchmarkOffloadModel(b *testing.B) {
	s := sharedSuite()
	benchExperiment(b, func() (interface{ Render() string }, error) {
		return s.OffloadStudy(10)
	})
}

// BenchmarkScheduleCurve measures the extension chain-scheduling study.
func BenchmarkScheduleCurve(b *testing.B) {
	s := sharedSuite()
	benchExperiment(b, func() (interface{ Render() string }, error) {
		return s.ScheduleCurve([]int{2, 4, 8})
	})
}

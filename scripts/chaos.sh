#!/bin/sh
# Full chaos sweep: replay every registered fault point (safeio pipeline,
# v3/v2 trace writers, reader, FileSink finalization) against real workload
# runs in both output modes — callgrind dumps and sigil event files — and
# assert the survival contracts: a typed injected error with the previous
# artifact intact, or a salvageable stream whose recovered events are a
# prefix-with-gaps of the fault-free run with the loss exactly accounted.
set -eu
cd "$(dirname "$0")/.."

FUZZTIME="${FUZZTIME:-10s}"

echo "== chaos sweep (all workloads, all fault points)"
go test -count=1 -run TestChaos -v ./internal/chaos

echo "== chaos sweep under the race detector"
go test -race -count=1 -run TestChaos ./internal/chaos

echo "== degraded-mode and retry tests under the race detector"
go test -race -count=1 -run 'TestDegraded|TestRetry|TestStrictWriter|TestSalvageQuarantine' ./internal/trace

echo "== quarantine fuzz smoke ($FUZZTIME)"
go test -run '^$' -fuzz FuzzQuarantineReader -fuzztime "$FUZZTIME" ./internal/trace

echo "== chaos sweep passed"

#!/bin/sh
# Run the performance benchmarks and write a BENCH_N.json: a map from
# benchmark name to ns/op and bytes/op, so successive PRs can be diffed.
# Covers the self-overhead/ablation benches (root package), the
# shadow-memory hot-path microbenches (internal/core), and the event-file
# emit/decode microbenches (internal/trace).
#
# Usage:
#   scripts/bench.sh [regexp]              run benches (default pattern below),
#                                          write $OUT (default BENCH_5.json)
#   scripts/bench.sh compare OLD NEW       diff two bench JSON files; exits 1
#                                          if any shared benchmark regressed
#                                          >10% in ns/op or >25% in bytes/op
#                                          (allocation bloat regressions —
#                                          e.g. scratch buffers falling out
#                                          of a pool — fail the gate even
#                                          when ns/op still passes)
#
# When the run covers the BenchmarkAblationTracing pair, the script also
# gates the tracing overhead: the spans-enabled run must land within
# TRACING_GATE_PCT (default 3) percent of the spans-disabled run.
set -eu
cd "$(dirname "$0")/.."

if [ "${1:-}" = "compare" ]; then
    old="${2:?usage: bench.sh compare OLD.json NEW.json}"
    new="${3:?usage: bench.sh compare OLD.json NEW.json}"
    awk -v oldfile="$old" -v newfile="$new" '
    function parse(file, arr, barr,    line, name, ns, by) {
        while ((getline line < file) > 0) {
            if (match(line, /"[^"]+": \{"ns_per_op": [0-9.]+/)) {
                split(line, parts, "\"")
                name = parts[2]
                match(line, /"ns_per_op": [0-9.]+/)
                ns = substr(line, RSTART + 13, RLENGTH - 13)
                arr[name] = ns + 0
                if (match(line, /"bytes_per_op": [0-9.]+/)) {
                    by = substr(line, RSTART + 16, RLENGTH - 16)
                    barr[name] = by + 0
                }
            }
        }
        close(file)
    }
    BEGIN {
        parse(oldfile, oldns, oldby)
        parse(newfile, newns, newby)
        shared = 0; regressed = 0
        printf "%-60s %12s %12s %8s\n", "benchmark", "old ns/op", "new ns/op", "delta"
        for (name in newns) {
            if (!(name in oldns)) continue
            shared++
            delta = (newns[name] - oldns[name]) / oldns[name] * 100
            flag = ""
            if (delta > 10) { flag = "  REGRESSION"; regressed++ }
            printf "%-60s %12.0f %12.0f %+7.1f%%%s\n", name, oldns[name], newns[name], delta, flag
            # Allocation gate: bytes/op regressions past 25% (on benches
            # big enough for the delta to mean something) fail even when
            # ns/op holds — pooled buffers leaving the pool show up here
            # long before they cost visible time.
            if ((name in oldby) && (name in newby) && oldby[name] >= 1024) {
                bdelta = (newby[name] - oldby[name]) / oldby[name] * 100
                if (bdelta > 25) {
                    printf "%-60s %12.0f %12.0f %+7.1f%%  ALLOC REGRESSION (bytes/op)\n", name, oldby[name], newby[name], bdelta
                    regressed++
                }
            }
        }
        if (shared == 0) {
            print "no shared benchmarks between " oldfile " and " newfile
            exit 1
        }
        if (regressed > 0) {
            print regressed " benchmark(s) regressed (>10% ns/op or >25% bytes/op)"
            exit 1
        }
        print "no regressions across " shared " shared benchmark(s) (ns/op and bytes/op)"
    }'
    exit $?
fi

PATTERN="${1:-Overhead|Ablation|MemRead|MemWrite|Shadow|TraceEmit|TraceDecode}"
BENCHTIME="${BENCHTIME:-1x}"
OUT="${OUT:-BENCH_5.json}"

raw=$(go test -run '^$' -bench "$PATTERN" -benchtime "$BENCHTIME" . ./internal/core ./internal/trace)
echo "$raw"

echo "$raw" | awk '
BEGIN { print "{"; n = 0 }
$1 ~ /^Benchmark/ {
    name = $1
    ns = ""; bytes = ""
    for (i = 2; i <= NF; i++) {
        if ($(i) == "ns/op")  ns = $(i - 1)
        if ($(i) == "B/op")   bytes = $(i - 1)
    }
    if (ns == "") next
    if (n > 0) printf ",\n"
    printf "  \"%s\": {\"ns_per_op\": %s", name, ns
    if (bytes != "") printf ", \"bytes_per_op\": %s", bytes
    printf "}"
    n++
}
END { print "\n}" }
' > "$OUT"

echo "wrote $OUT"

# Lint-runtime budget: the full-tree analyzer suite (CFG construction,
# reaching definitions and all) must stay fast enough to sit in the
# pre-commit loop. Budget in seconds, wall clock, including the driver
# build.
LINT_BUDGET_S="${LINT_BUDGET_S:-30}"
lint_start=$(date +%s)
go run ./cmd/sigil-lint ./... > /dev/null
lint_end=$(date +%s)
lint_elapsed=$((lint_end - lint_start))
echo "lint runtime: ${lint_elapsed}s (budget ${LINT_BUDGET_S}s)"
if [ "$lint_elapsed" -gt "$LINT_BUDGET_S" ]; then
    echo "LINT RUNTIME BUDGET EXCEEDED"
    exit 1
fi

# Tracing-overhead gate: when this run measured the AblationTracing pair,
# require the spans-enabled ablation within TRACING_GATE_PCT of disabled.
TRACING_GATE_PCT="${TRACING_GATE_PCT:-3}"
echo "$raw" | awk -v gate="$TRACING_GATE_PCT" '
$1 ~ /^BenchmarkAblationTracing\/tracing=false/ { for (i = 2; i <= NF; i++) if ($(i) == "ns/op") off = $(i - 1) }
$1 ~ /^BenchmarkAblationTracing\/tracing=true/  { for (i = 2; i <= NF; i++) if ($(i) == "ns/op") on = $(i - 1) }
END {
    if (off == "" || on == "") exit 0  # pair not in this run
    delta = (on - off) / off * 100
    printf "tracing overhead: %.0f ns/op -> %.0f ns/op (%+.2f%%, gate %s%%)\n", off, on, delta, gate
    if (delta > gate + 0) {
        print "TRACING OVERHEAD GATE FAILED"
        exit 1
    }
}'

#!/bin/sh
# Run the self-overhead benchmarks and write BENCH_1.json: a map from
# benchmark name to ns/op and bytes/op, so successive runs can be diffed
# (e.g. to confirm the telemetry sampler stays within its ≤3% budget).
#
# Usage: scripts/bench.sh [go-test -bench regexp]   (default: Overhead|Ablation)
set -eu
cd "$(dirname "$0")/.."

PATTERN="${1:-Overhead|Ablation}"
BENCHTIME="${BENCHTIME:-1x}"
OUT="${OUT:-BENCH_1.json}"

raw=$(go test -run '^$' -bench "$PATTERN" -benchtime "$BENCHTIME" . )
echo "$raw"

echo "$raw" | awk '
BEGIN { print "{"; n = 0 }
$1 ~ /^Benchmark/ {
    name = $1
    ns = ""; bytes = ""
    for (i = 2; i <= NF; i++) {
        if ($(i) == "ns/op")  ns = $(i - 1)
        if ($(i) == "B/op")   bytes = $(i - 1)
    }
    if (ns == "") next
    if (n > 0) printf ",\n"
    printf "  \"%s\": {\"ns_per_op\": %s", name, ns
    if (bytes != "") printf ", \"bytes_per_op\": %s", bytes
    printf "}"
    n++
}
END { print "\n}" }
' > "$OUT"

echo "wrote $OUT"

#!/bin/sh
# Full pre-merge check: vet, build, race-enabled tests, worker-pool
# shakeouts of the parallel experiments suite and the sharded
# classification engine, and a short fuzz smoke over the input parsers and
# the batched classifier.
set -eu
cd "$(dirname "$0")/.."

FUZZTIME="${FUZZTIME:-5s}"

echo "== gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed:"
    echo "$unformatted"
    exit 1
fi

echo "== go vet"
go vet ./...

echo "== go build"
go build ./...

echo "== sigil-lint (8 analyzers incl. shardown/hotalloc/goleak)"
go run ./cmd/sigil-lint ./...

echo "== sigil-lint -vm (static program verifier over checked-in assembly)"
go run ./cmd/sigil-lint -vm examples/asm/*.sasm

echo "== vm verify (every registry workload at every class)"
go test -count=1 -run 'TestAllWorkloadsVerify' ./internal/workloads

echo "== go test -race"
go test -race ./...

echo "== experiments worker-pool shakeout (-race, uncached)"
go test -race -count=1 -run 'TestProfileSingleflight|TestParallelSuite|TestRunPool' ./internal/experiments

echo "== sharded classification shakeout (-race, uncached)"
go test -race -count=1 -run 'TestShardShakeout|TestShardedRepeatRunsIdentical' ./internal/core

echo "== chaos sweep (short; scripts/chaos.sh runs the full matrix)"
go test -short -count=1 -run TestChaos ./internal/chaos

echo "== fuzz smoke ($FUZZTIME each)"
go test -run '^$' -fuzz FuzzReader -fuzztime "$FUZZTIME" ./internal/trace
go test -run '^$' -fuzz FuzzFrameReader -fuzztime "$FUZZTIME" ./internal/trace
go test -run '^$' -fuzz FuzzQuarantineReader -fuzztime "$FUZZTIME" ./internal/trace
go test -run '^$' -fuzz FuzzReadProfile -fuzztime "$FUZZTIME" ./internal/core
go test -run '^$' -fuzz FuzzBatchedClassifier -fuzztime "$FUZZTIME" ./internal/core

echo "== bench smoke (scratch output; committed BENCH_N.json untouched)"
OUT="$(mktemp)" BENCHTIME=1x sh scripts/bench.sh 'AblationTelemetry' > /dev/null

echo "== all checks passed"

#!/bin/sh
# Full pre-merge check: vet, build, race-enabled tests, and a short fuzz
# smoke over both input parsers (event files and text profiles).
set -eu
cd "$(dirname "$0")/.."

FUZZTIME="${FUZZTIME:-5s}"

echo "== gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed:"
    echo "$unformatted"
    exit 1
fi

echo "== go vet"
go vet ./...

echo "== go build"
go build ./...

echo "== go test -race"
go test -race ./...

echo "== fuzz smoke ($FUZZTIME each)"
go test -run '^$' -fuzz FuzzReader -fuzztime "$FUZZTIME" ./internal/trace
go test -run '^$' -fuzz FuzzReadProfile -fuzztime "$FUZZTIME" ./internal/core

echo "== bench smoke (BENCH_1.json)"
BENCHTIME=1x sh scripts/bench.sh 'AblationTelemetry' > /dev/null

echo "== all checks passed"

package sigil

import (
	"sigil/internal/callgrind"
	"sigil/internal/core"
)

// Bench-only shorthands for the error-returning constructors; the fixed
// configs here cannot fail, so panicking is the right report for a typo.
func mustSub() *callgrind.Tool {
	sub, err := callgrind.New(callgrind.Options{})
	if err != nil {
		panic(err)
	}
	return sub
}

func mustCore(sub *callgrind.Tool, opts core.Options) *core.Tool {
	t, err := core.New(sub, opts)
	if err != nil {
		panic(err)
	}
	return t
}
